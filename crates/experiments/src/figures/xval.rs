//! Model-vs-simulation cross-validation.
//!
//! The analytic backend claims that the paper's closed forms, fed the
//! parameters extracted from one reference-depth simulation, predict the
//! whole depth sweep. This experiment quantifies that claim cell by cell:
//! for every suite workload and every swept depth it evaluates the
//! [`AnalyticModel`] on the workload's extracted profile and reports the
//! relative error of the predicted per-instruction time τ against the
//! simulated one — both absolute, and after a per-workload least-squares
//! scale fit (the shape error, which is what the paper's Fig. 4 overlays
//! measure; the extraction carries a known per-workload scale offset).
//!
//! Both sides go through the backend-agnostic [`Evaluator`] interface: the
//! analytic side by construction, and the simulation side via a
//! [`SimBackend`] spot-check that re-requests one cached cell per class
//! and asserts the adapter reproduces the sweep's numbers exactly.

use crate::eval::{cell_for, SimBackend};
use crate::experiment::{Artifact, Context, ExperimentOutput};
use crate::report::Table;
use pipedepth_core::eval::{AnalyticModel, Evaluator};
use pipedepth_workloads::WorkloadClass;
use std::fmt;

/// One cross-validated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct XvalRow {
    /// Workload name.
    pub workload: String,
    /// Workload class.
    pub class: WorkloadClass,
    /// Pipeline depth.
    pub depth: u32,
    /// Simulated per-instruction time, FO4.
    pub tau_sim: f64,
    /// Analytic per-instruction time from the extracted profile, FO4.
    pub tau_model: f64,
    /// Model τ after the workload's least-squares scale fit.
    pub tau_model_scaled: f64,
}

impl XvalRow {
    /// Absolute relative τ error of the model against the simulation.
    pub fn rel_error(&self) -> f64 {
        (self.tau_model - self.tau_sim).abs() / self.tau_sim
    }

    /// Relative τ error after the per-workload scale fit — the shape
    /// error, scale-free like the paper's overlay comparisons.
    pub fn shape_error(&self) -> f64 {
        (self.tau_model_scaled - self.tau_sim).abs() / self.tau_sim
    }
}

/// The cross-validation result set.
#[derive(Debug, Clone, PartialEq)]
pub struct Xval {
    /// Every compared cell, in suite × depth order.
    pub rows: Vec<XvalRow>,
    /// Cells re-evaluated through the simulation backend adapter and
    /// matched exactly against the sweep.
    pub adapter_checked: usize,
}

impl Xval {
    /// Mean relative τ error over all cells.
    pub fn mean_error(&self) -> f64 {
        self.rows.iter().map(XvalRow::rel_error).sum::<f64>() / self.rows.len() as f64
    }

    /// Largest relative τ error over all cells.
    pub fn max_error(&self) -> f64 {
        self.rows.iter().map(XvalRow::rel_error).fold(0.0, f64::max)
    }

    /// Mean shape error (post scale fit) over all cells.
    pub fn mean_shape_error(&self) -> f64 {
        self.rows.iter().map(XvalRow::shape_error).sum::<f64>() / self.rows.len() as f64
    }

    /// Largest shape error over all cells.
    pub fn max_shape_error(&self) -> f64 {
        self.rows
            .iter()
            .map(XvalRow::shape_error)
            .fold(0.0, f64::max)
    }

    /// Mean relative τ error of one class's cells.
    pub fn class_error(&self, class: WorkloadClass) -> f64 {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.class == class)
            .map(XvalRow::rel_error)
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }

    /// Mean shape error of one class's cells.
    pub fn class_shape_error(&self, class: WorkloadClass) -> f64 {
        let errs: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.class == class)
            .map(XvalRow::shape_error)
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    }
}

/// Runs the cross-validation against a context's (simulated) curves.
pub fn run_for(ctx: &Context) -> Xval {
    let model = AnalyticModel::paper();
    let mut rows = Vec::new();
    for curve in ctx.curves() {
        let profile = curve.extracted.profile();
        let mut workload_rows: Vec<XvalRow> = curve
            .points
            .iter()
            .map(|point| {
                let cell = cell_for(&curve.workload, profile, point.depth, &ctx.config);
                let out = model
                    .evaluate(&cell)
                    // analysis: allow(panic-path) — extracted profiles come
                    // from finished simulations, so these cells are valid
                    .expect("extracted cells are valid");
                XvalRow {
                    workload: curve.workload.name.clone(),
                    class: curve.workload.class,
                    depth: point.depth,
                    tau_sim: 1.0 / point.throughput,
                    tau_model: out.time_per_instruction_fo4,
                    tau_model_scaled: 0.0,
                }
            })
            .collect();
        // Least-squares scale s minimising Σ(s·τ_model − τ_sim)² over the
        // workload's depths.
        let num: f64 = workload_rows.iter().map(|r| r.tau_model * r.tau_sim).sum();
        let den: f64 = workload_rows
            .iter()
            .map(|r| r.tau_model * r.tau_model)
            .sum();
        let scale = if den > 0.0 { num / den } else { 1.0 };
        for row in &mut workload_rows {
            row.tau_model_scaled = scale * row.tau_model;
        }
        rows.extend(workload_rows);
    }

    // Adapter spot-check: one cached cell per class back through the
    // simulation Evaluator must reproduce the sweep bit for bit.
    let backend = SimBackend::new(&ctx.runner);
    let mut adapter_checked = 0;
    for class in WorkloadClass::ALL {
        let curve = ctx.curve_for(class);
        let point = &curve.points[curve.points.len() / 2];
        let cell = cell_for(
            &curve.workload,
            curve.extracted.profile(),
            point.depth,
            &ctx.config,
        );
        let out = backend
            .evaluate(&cell)
            // analysis: allow(panic-path) — the cell re-requests a point the
            // sweep already simulated, so it is valid by construction
            .expect("swept cells are valid");
        assert_eq!(
            (out.cpi, out.throughput, out.metric_gated),
            (point.cpi, point.throughput, point.metric_gated),
            "sim backend must reproduce the swept cell for {}",
            curve.workload.name
        );
        adapter_checked += 1;
    }

    Xval {
        rows,
        adapter_checked,
    }
}

impl fmt::Display for Xval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cross-validation — analytic model vs simulation, per-cell τ"
        )?;
        writeln!(
            f,
            "  {} cells, {} adapter-checked through the sim Evaluator",
            self.rows.len(),
            self.adapter_checked
        )?;
        writeln!(
            f,
            "  {:>8} {:>12} {:>12}",
            "class", "mean τ err", "shape err"
        )?;
        for class in WorkloadClass::ALL {
            writeln!(
                f,
                "  {:>8} {:>11.1}% {:>11.1}%",
                class.tag(),
                100.0 * self.class_error(class),
                100.0 * self.class_shape_error(class)
            )?;
        }
        writeln!(
            f,
            "  overall mean {:.1}% (max {:.1}%); after scale fit mean {:.1}% (max {:.1}%)",
            100.0 * self.mean_error(),
            100.0 * self.max_error(),
            100.0 * self.mean_shape_error(),
            100.0 * self.max_shape_error()
        )
    }
}

/// Registry spec: suite-wide model-vs-sim τ cross-validation.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "xval"
    }

    fn title(&self) -> &'static str {
        "model-vs-sim cross-validation (per-cell τ error)"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn requires_sim(&self) -> bool {
        true
    }

    fn run(&self, ctx: &Context) -> ExperimentOutput {
        let xval = run_for(ctx);
        let mut t = Table::new(&[
            "workload",
            "class",
            "depth",
            "tau_sim",
            "tau_model",
            "rel_error",
            "tau_model_scaled",
            "shape_error",
        ]);
        for r in &xval.rows {
            t.push_row(vec![
                r.workload.clone(),
                r.class.tag().to_string(),
                r.depth.to_string(),
                r.tau_sim.to_string(),
                r.tau_model.to_string(),
                r.rel_error().to_string(),
                r.tau_model_scaled.to_string(),
                r.shape_error().to_string(),
            ])
            // analysis: allow(panic-path) — row width fixed by construction
            .expect("row width fixed by construction");
        }
        ExperimentOutput {
            summary: xval.to_string(),
            artifacts: vec![Artifact::new("xval.csv", t.to_csv())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;
    use crate::sweep::RunConfig;

    #[test]
    fn cross_validation_runs_and_bounds_error() {
        let cfg = RunConfig {
            warmup: 3_000,
            instructions: 6_000,
            depths: vec![6, 10, 14],
            ..RunConfig::default()
        };
        let ctx = Context::new(cfg, Runner::serial());
        let xval = run_for(&ctx);
        assert_eq!(xval.rows.len(), ctx.curves().len() * 3);
        assert_eq!(xval.adapter_checked, 4);
        for r in &xval.rows {
            assert!(r.tau_sim > 0.0 && r.tau_model > 0.0);
        }
        // The extraction carries a per-workload scale offset (hence the
        // paper's scale-only overlay fits), so the absolute error is only
        // sanity-bounded; the scale-free shape error is the tracked claim.
        assert!(
            xval.mean_error() < 1.0,
            "mean τ error {:.3} out of band",
            xval.mean_error()
        );
        assert!(
            xval.mean_shape_error() < 0.12,
            "mean shape error {:.3} out of band",
            xval.mean_shape_error()
        );
    }
}
