//! Figure 8: the effect of leakage power on the optimum pipeline depth.
//!
//! Theory curves (normalised to their own maxima) for leakage fractions
//! from 0% to 90% of total power, dynamic power held constant. The paper's
//! finding: growing leakage pushes the optimum *deeper* (7 → 14 stages in
//! its example).

use crate::extract::ExtractedParams;
use crate::sweep::RunConfig;
use pipedepth_core::{
    leakage_sweep, normalized_leakage_curves, ClockGating, MetricExponent, PowerParams,
    SweepConfig, TechParams,
};
use pipedepth_workloads::{suite_class, WorkloadClass};
use std::fmt;

/// Result of the Figure 8 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8 {
    /// Leakage fractions swept.
    pub fractions: Vec<f64>,
    /// Optimum depth at each fraction (None ⇒ unpipelined/boundary).
    pub optima: Vec<Option<f64>>,
    /// Depths the normalised curves are sampled at.
    pub depths: Vec<f64>,
    /// Normalised metric curves, one per fraction.
    pub curves: Vec<(f64, Vec<f64>)>,
}

/// The leakage fractions of the paper's Fig. 8.
pub const FRACTIONS: [f64; 5] = [0.0, 0.15, 0.30, 0.50, 0.90];

/// Runs Figure 8 for a workload-parameter extraction (from a SPECint
/// workload simulation, as the paper uses).
pub fn run_with_params(extracted: &ExtractedParams, config: &RunConfig) -> Fig8 {
    let sweep = SweepConfig {
        tech: TechParams::paper(),
        workload: extracted.workload_params(),
        power: PowerParams::paper().with_gating(ClockGating::Complete {
            kappa: extracted.kappa.max(1e-6),
        }),
        m: MetricExponent::BIPS3_PER_WATT,
        ref_depth: config.ref_depth as f64,
    };
    let points = leakage_sweep(&sweep, &FRACTIONS);
    let depths: Vec<f64> = (1..=28).map(|p| p as f64).collect();
    let curves = normalized_leakage_curves(&sweep, &FRACTIONS, &depths);
    Fig8 {
        fractions: FRACTIONS.to_vec(),
        optima: points.iter().map(|p| p.optimum.depth()).collect(),
        depths,
        curves,
    }
}

/// Runs Figure 8 end to end: extract parameters from the first SPECint
/// workload at the reference depth, then sweep leakage analytically.
pub fn run(config: &RunConfig) -> Fig8 {
    let w = suite_class(WorkloadClass::SpecInt)
        .into_iter()
        .next()
        .expect("SPECint class populated");
    let curve = crate::sweep::sweep_workload(&w, config);
    run_with_params(&curve.extracted, config)
}

/// Registry spec: the leakage sweep, parameterised from the representative
/// SPECint extraction, with `fig8.csv`.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn title(&self) -> &'static str {
        "optimum depth vs leakage fraction (theory)"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let spec_curve = ctx.curve_for(WorkloadClass::SpecInt);
        let fig = run_with_params(&spec_curve.extracted, &ctx.config);
        let named: Vec<(String, &[f64])> = fig
            .curves
            .iter()
            .map(|(frac, ys)| (format!("leak_{:.0}pct", frac * 100.0), ys.as_slice()))
            .collect();
        let columns: Vec<(&str, &[f64])> = named.iter().map(|(n, ys)| (n.as_str(), *ys)).collect();
        let table = crate::report::Table::from_series("depth", &fig.depths, &columns)
            .expect("leakage curves share the depth axis");
        let out = crate::experiment::ExperimentOutput {
            summary: fig.to_string(),
            artifacts: vec![crate::experiment::Artifact::new("fig8.csv", table.to_csv())],
        };
        let _ = ctx.outcomes.fig8.set(fig);
        out
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8 — optimum depth vs leakage fraction (theory)")?;
        for (frac, opt) in self.fractions.iter().zip(&self.optima) {
            match opt {
                Some(d) => writeln!(
                    f,
                    "  leakage {:>3.0}% → optimum {d:.1} stages",
                    frac * 100.0
                )?,
                None => writeln!(f, "  leakage {:>3.0}% → no pipelined optimum", frac * 100.0)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extracted() -> ExtractedParams {
        ExtractedParams {
            alpha: 2.5,
            gamma: 0.4,
            hazard_rate: 0.15,
            kappa: 0.5,
            memory_time_fo4: 0.0,
            ref_depth: 10,
        }
    }

    #[test]
    fn leakage_deepens_optimum_monotonically() {
        let fig = run_with_params(&extracted(), &RunConfig::default());
        let depths: Vec<f64> = fig
            .optima
            .iter()
            .map(|o| o.expect("optimum exists"))
            .collect();
        for w in depths.windows(2) {
            assert!(w[1] > w[0], "not monotone: {depths:?}");
        }
    }

    #[test]
    fn ninety_percent_roughly_doubles_zero_percent() {
        // The paper: 7 stages at ~0% leakage → 14 at 90%.
        let fig = run_with_params(&extracted(), &RunConfig::default());
        let d0 = fig.optima.first().unwrap().unwrap();
        let d90 = fig.optima.last().unwrap().unwrap();
        let ratio = d90 / d0;
        assert!(ratio > 1.5 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn curves_are_normalised() {
        let fig = run_with_params(&extracted(), &RunConfig::default());
        for (_, ys) in &fig.curves {
            let max = ys.iter().cloned().fold(f64::MIN, f64::max);
            assert!((max - 1.0).abs() < 1e-12);
        }
    }
}
