//! Figure 7: per-class distributions of optimum pipeline depths.
//!
//! The paper's breakdown: traditional (legacy) workloads peak at ≈9 stages
//! (18 FO4), SPECint at ≈7 (22.5 FO4), modern between 7 and 8 (≈21 FO4),
//! and floating point spreads over 6–16 stages.

use crate::figures::fig6::{optimum_of, WorkloadOptimum};
use crate::sweep::{sweep_all, RunConfig, WorkloadCurve};
use pipedepth_math::histogram::Histogram;
use pipedepth_math::stats::Summary;
use pipedepth_workloads::{suite, WorkloadClass};
use std::fmt;

/// One class's distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDistribution {
    /// The class.
    pub class: WorkloadClass,
    /// Optima of its workloads.
    pub optima: Vec<WorkloadOptimum>,
    /// Histogram over 1–25 stages.
    pub histogram: Histogram,
    /// Summary of the cubic-fit optima.
    pub summary: Summary,
}

impl ClassDistribution {
    /// Spread of the distribution (max − min).
    pub fn spread(&self) -> f64 {
        self.summary.max - self.summary.min
    }
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// Distributions in [`WorkloadClass::ALL`] order.
    pub classes: Vec<ClassDistribution>,
}

impl Fig7 {
    /// Looks up one class's distribution.
    pub fn class(&self, class: WorkloadClass) -> &ClassDistribution {
        self.classes
            .iter()
            .find(|c| c.class == class)
            .expect("all classes present")
    }
}

/// Builds Figure 7 from finished sweeps.
pub fn from_curves(curves: &[WorkloadCurve]) -> Fig7 {
    let classes = WorkloadClass::ALL
        .iter()
        .map(|&class| {
            let optima: Vec<WorkloadOptimum> = curves
                .iter()
                .filter(|c| c.workload.class == class)
                .map(optimum_of)
                .collect();
            let mut histogram = Histogram::new(1.0, 25.0, 24);
            for o in &optima {
                histogram.add(o.cubic_fit_depth);
            }
            let depths: Vec<f64> = optima.iter().map(|o| o.cubic_fit_depth).collect();
            let summary = Summary::of(&depths).expect("class is non-empty");
            ClassDistribution {
                class,
                optima,
                histogram,
                summary,
            }
        })
        .collect();
    Fig7 { classes }
}

/// Runs the full 55-workload Figure 7 experiment.
pub fn run(config: &RunConfig) -> Fig7 {
    let workloads = suite();
    let curves = sweep_all(&workloads, config);
    from_curves(&curves)
}

/// Registry spec: the per-class breakdown of the suite optima.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn title(&self) -> &'static str {
        "optimum-depth distributions by workload class"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let fig = from_curves(ctx.curves());
        let out = crate::experiment::ExperimentOutput::summary_only(fig.to_string());
        let _ = ctx.outcomes.fig7.set(fig);
        out
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7 — optimum-depth distributions by workload class")?;
        for c in &self.classes {
            writeln!(
                f,
                "  {:<20} mean {:>4.1} stages ({:>4.1} FO4)  range {:.1}–{:.1}",
                c.class.to_string(),
                c.summary.mean,
                2.5 + 140.0 / c.summary.mean,
                c.summary.min,
                c.summary.max
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_workload;
    use pipedepth_workloads::suite_class;

    /// Two workloads per class keeps this affordable as a unit test; the
    /// full-suite comparison lives in the integration tests and benches.
    fn small_curves() -> Vec<WorkloadCurve> {
        let cfg = RunConfig {
            warmup: 8_000,
            instructions: 16_000,
            depths: (2..=24).step_by(2).collect(),
            ..RunConfig::default()
        };
        WorkloadClass::ALL
            .iter()
            .flat_map(|&c| suite_class(c).into_iter().take(2))
            .map(|w| sweep_workload(&w, &cfg))
            .collect()
    }

    #[test]
    fn every_class_distributed() {
        let fig = from_curves(&small_curves());
        assert_eq!(fig.classes.len(), 4);
        for c in &fig.classes {
            assert_eq!(c.optima.len(), 2);
            assert_eq!(c.histogram.total(), 2);
        }
    }

    #[test]
    fn class_lookup() {
        let fig = from_curves(&small_curves());
        assert_eq!(
            fig.class(WorkloadClass::SpecInt).class,
            WorkloadClass::SpecInt
        );
    }

    #[test]
    fn fp_optima_deeper_than_specint() {
        // The headline class contrast the paper reports.
        let fig = from_curves(&small_curves());
        let fp = fig.class(WorkloadClass::FloatingPoint).summary.mean;
        let spec = fig.class(WorkloadClass::SpecInt).summary.mean;
        assert!(fp > spec, "fp {fp} vs specint {spec}");
    }
}
