//! Figure 6: the distribution of observed optimum pipeline depths over all
//! 55 workloads.
//!
//! For each workload the paper performs "a least squares fit to a cubic
//! equation" on the simulated (clock-gated) BIPS³/W points and takes the
//! fitted curve's maximum as the observed optimum. The resulting
//! distribution is centred near 8 stages (20 FO4 per stage).

use crate::sweep::{sweep_all, RunConfig, WorkloadCurve};
use pipedepth_math::fit::cubic_peak_fit;
use pipedepth_math::histogram::Histogram;
use pipedepth_math::stats::Summary;
use pipedepth_workloads::{suite, WorkloadClass};
use std::fmt;

/// One workload's extracted optimum.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOptimum {
    /// Workload name.
    pub name: String,
    /// Its class.
    pub class: WorkloadClass,
    /// Cubic-fit optimum depth (stages, continuous).
    pub cubic_fit_depth: f64,
    /// Grid argmax of the simulated points (for reference).
    pub grid_depth: u32,
    /// R² of the cubic fit.
    pub r_squared: f64,
}

/// Result of the Figure 6 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// Per-workload optima.
    pub optima: Vec<WorkloadOptimum>,
    /// Histogram over 1–25 stages (one bin per stage).
    pub histogram: Histogram,
    /// Summary statistics of the cubic-fit optima.
    pub summary: Summary,
}

impl Fig6 {
    /// Cycle time (FO4/stage) at the mean optimum, the paper's headline
    /// framing ("8 stages … 20 FO4").
    pub fn mean_fo4_per_stage(&self) -> f64 {
        2.5 + 140.0 / self.summary.mean
    }
}

/// Extracts the cubic-fit optimum from one sweep's gated BIPS³/W curve.
pub fn optimum_of(curve: &WorkloadCurve) -> WorkloadOptimum {
    let xs = curve.depths();
    let ys = curve.gated_series(3);
    let fit = cubic_peak_fit(&xs, &ys).expect("24-point sweep supports a cubic fit");
    WorkloadOptimum {
        name: curve.workload.name.clone(),
        class: curve.workload.class,
        cubic_fit_depth: fit.peak_x,
        grid_depth: curve.best_gated_m3_depth(),
        r_squared: fit.r_squared,
    }
}

/// Builds Figure 6 from finished sweeps.
pub fn from_curves(curves: &[WorkloadCurve]) -> Fig6 {
    let optima: Vec<WorkloadOptimum> = curves.iter().map(optimum_of).collect();
    let mut histogram = Histogram::new(1.0, 25.0, 24);
    for o in &optima {
        histogram.add(o.cubic_fit_depth);
    }
    let depths: Vec<f64> = optima.iter().map(|o| o.cubic_fit_depth).collect();
    let summary = Summary::of(&depths).expect("suite is non-empty");
    Fig6 {
        optima,
        histogram,
        summary,
    }
}

/// Runs the full 55-workload Figure 6 experiment.
pub fn run(config: &RunConfig) -> Fig6 {
    let workloads = suite();
    let curves = sweep_all(&workloads, config);
    from_curves(&curves)
}

/// Registry spec: the full-suite optimum distribution with `fig6.csv`.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn title(&self) -> &'static str {
        "distribution of optimum depths over the suite"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let fig = from_curves(ctx.curves());
        let mut table = crate::report::Table::new(&[
            "workload",
            "class",
            "cubic_fit_depth",
            "grid_depth",
            "r_squared",
        ]);
        for o in &fig.optima {
            table
                .push_row(vec![
                    o.name.clone(),
                    o.class.tag().to_string(),
                    o.cubic_fit_depth.to_string(),
                    o.grid_depth.to_string(),
                    o.r_squared.to_string(),
                ])
                .expect("row width fixed by construction");
        }
        let out = crate::experiment::ExperimentOutput {
            summary: fig.to_string(),
            artifacts: vec![crate::experiment::Artifact::new("fig6.csv", table.to_csv())],
        };
        let _ = ctx.outcomes.fig6.set(fig);
        out
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 6 — distribution of optimum depths, all 55 workloads"
        )?;
        writeln!(
            f,
            "  mean {:.1} stages ({:.1} FO4), median {:.1}, mode bin {:.0}, range {:.1}–{:.1}",
            self.summary.mean,
            self.mean_fo4_per_stage(),
            self.summary.median,
            self.histogram.mode_center().unwrap_or(f64::NAN),
            self.summary.min,
            self.summary.max
        )?;
        write!(f, "{}", self.histogram.render_ascii(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_workload;
    use pipedepth_workloads::representatives;

    fn quick() -> RunConfig {
        RunConfig {
            warmup: 8_000,
            instructions: 16_000,
            depths: (2..=24).step_by(2).collect(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn representative_optima_in_physical_range() {
        let curves: Vec<_> = representatives()
            .iter()
            .map(|w| sweep_workload(w, &quick()))
            .collect();
        let fig = from_curves(&curves);
        assert_eq!(fig.optima.len(), 4);
        for o in &fig.optima {
            assert!(
                o.cubic_fit_depth >= 2.0 && o.cubic_fit_depth <= 24.0,
                "{}: {}",
                o.name,
                o.cubic_fit_depth
            );
        }
        assert_eq!(fig.histogram.total(), 4);
    }

    #[test]
    fn cubic_fit_near_grid_argmax() {
        let curves: Vec<_> = representatives()
            .iter()
            .map(|w| sweep_workload(w, &quick()))
            .collect();
        for c in &curves {
            let o = optimum_of(c);
            assert!(
                (o.cubic_fit_depth - o.grid_depth as f64).abs() <= 6.0,
                "{}: cubic {} vs grid {}",
                o.name,
                o.cubic_fit_depth,
                o.grid_depth
            );
        }
    }

    #[test]
    fn fo4_conversion() {
        let curves: Vec<_> = representatives()
            .iter()
            .map(|w| sweep_workload(w, &quick()))
            .collect();
        let fig = from_curves(&curves);
        let fo4 = fig.mean_fo4_per_stage();
        assert!((fo4 - (2.5 + 140.0 / fig.summary.mean)).abs() < 1e-12);
    }
}
