//! Figure 3: latch count vs. pipeline depth.
//!
//! The paper reports that, with individual unit latch counts growing as
//! `(unit depth)^1.3`, the overall processor latch count fits a `p^1.1`
//! power law over the simulated 2–25 stage range.

use pipedepth_math::fit::{power_law_fit, PowerLaw};
use pipedepth_power::LatchModel;
use pipedepth_sim::StagePlan;
use std::fmt;

/// Result of the Figure 3 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// Depths sampled.
    pub depths: Vec<f64>,
    /// Total latch counts (normalised to the count at the shallowest
    /// depth, as the paper plots relative growth).
    pub latches: Vec<f64>,
    /// The fitted power law.
    pub fit: PowerLaw,
    /// The per-unit growth exponent used.
    pub unit_growth: f64,
}

/// Runs Figure 3 with the paper's latch model over depths 2–25.
pub fn run() -> Fig3 {
    run_with_model(&LatchModel::paper(), 2, 25)
}

/// Runs Figure 3 with a custom latch model and depth range.
///
/// # Panics
///
/// Panics if the range is empty or out of the stage-plan domain.
pub fn run_with_model(model: &LatchModel, lo: u32, hi: u32) -> Fig3 {
    assert!(lo >= 2 && hi > lo, "need a non-empty range of depths ≥ 2");
    let depths: Vec<f64> = (lo..=hi).map(|d| d as f64).collect();
    let raw: Vec<f64> = (lo..=hi)
        .map(|d| model.total_latches(&StagePlan::try_for_depth(d).expect("valid depth")))
        .collect();
    let base = raw[0];
    let latches: Vec<f64> = raw.into_iter().map(|v| v / base).collect();
    let fit = power_law_fit(&depths, &latches).expect("positive data fits a power law");
    Fig3 {
        depths,
        latches,
        fit,
        unit_growth: model.unit_growth,
    }
}

/// Registry spec: regenerate Figure 3 and emit `fig3.csv`.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn title(&self) -> &'static str {
        "latch count growth with pipeline depth"
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let fig = run();
        let table =
            crate::report::Table::from_series("depth", &fig.depths, &[("latches", &fig.latches)])
                .expect("one latch count per depth");
        let out = crate::experiment::ExperimentOutput {
            summary: fig.to_string(),
            artifacts: vec![crate::experiment::Artifact::new("fig3.csv", table.to_csv())],
        };
        let _ = ctx.outcomes.fig3.set(fig);
        out
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 3 — latch count growth with pipeline depth")?;
        writeln!(
            f,
            "  unit exponent {} ⇒ overall fit p^{:.3} (R² = {:.4}; paper: p^1.1 from unit 1.3)",
            self.unit_growth, self.fit.exponent, self.fit.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overall_exponent_near_paper() {
        let fig = run();
        assert!(
            (fig.fit.exponent - 1.1).abs() < 0.08,
            "exponent {}",
            fig.fit.exponent
        );
    }

    #[test]
    fn normalised_to_first_depth() {
        let fig = run();
        assert!((fig.latches[0] - 1.0).abs() < 1e-12);
        assert!(fig.latches.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn steeper_units_steepen_overall() {
        let steep = run_with_model(&LatchModel::new(1.8, 45.0), 2, 25);
        let base = run();
        assert!(steep.fit.exponent > base.fit.exponent);
    }
}
