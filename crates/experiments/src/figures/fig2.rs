//! Figure 2: the modelled pipeline, and how it stretches with depth.
//!
//! The paper's Fig. 2 is structural — the two instruction flows of the
//! 4-issue machine. This driver renders the realised structure at any
//! depth, plus the expansion table showing how the paper's "uniform"
//! stage insertion distributes stages across Decode, Agen, Cache access
//! and the E-unit from 2 to 25 stages.

use pipedepth_sim::StagePlan;
use std::fmt;

/// The structural figure: stage plans over the full depth range.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// One plan per depth, ascending from 2 to `max_depth`.
    pub plans: Vec<(u32, StagePlan)>,
}

/// Builds the expansion table up to `max_depth`.
///
/// # Panics
///
/// Panics if `max_depth < 2`.
pub fn run(max_depth: u32) -> Fig2 {
    assert!(max_depth >= 2, "need at least the 2-stage machine");
    Fig2 {
        plans: (2..=max_depth)
            .map(|d| (d, StagePlan::try_for_depth(d).expect("valid depth")))
            .collect(),
    }
}

/// Renders one depth's pipeline as the paper draws it: boxes per unit with
/// their stage counts, RR and RX flows.
pub fn render_pipeline(plan: &StagePlan) -> String {
    let seg = |name: &str, stages: u32| -> String {
        if stages == 0 {
            format!("({name}: merged)")
        } else {
            format!("[{name} x{stages}]")
        }
    };
    let mut out = String::new();
    out.push_str(&format!(
        "RR: {} -> [exec Q] -> {} -> {} -> [retire]\n",
        seg("decode", plan.decode),
        seg("e-unit", plan.execute),
        seg("complete", plan.complete),
    ));
    out.push_str(&format!(
        "RX: {} -> [addr Q] -> {} -> {} -> [exec Q] -> {} -> {} -> [retire]\n",
        seg("decode", plan.decode),
        seg("agen", plan.agen),
        seg("cache", plan.cache),
        seg("e-unit", plan.execute),
        seg("complete", plan.complete),
    ));
    out
}

/// Registry spec: print the realised 8-stage pipeline structure.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "pipeline structure and uniform stage expansion"
    }

    fn run(&self, _ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let fig = run(25);
        let mut summary = String::from("Fig. 2 — pipeline structure (8-stage machine):\n");
        for line in render_pipeline(&fig.plans[6].1).lines() {
            summary.push_str("  ");
            summary.push_str(line);
            summary.push('\n');
        }
        crate::experiment::ExperimentOutput::summary_only(summary)
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2 — pipeline structure and uniform expansion")?;
        writeln!(
            f,
            "  {:>5} {:>7} {:>5} {:>6} {:>7}",
            "depth", "decode", "agen", "cache", "e-unit"
        )?;
        for (depth, plan) in &self.plans {
            writeln!(
                f,
                "  {depth:>5} {:>7} {:>5} {:>6} {:>7}{}",
                plan.decode,
                plan.agen,
                plan.cache,
                plan.execute,
                if plan.merged_units().is_empty() {
                    ""
                } else {
                    "   (merged units)"
                }
            )?;
        }
        if let Some((_, deepest)) = self.plans.last() {
            writeln!(f, "\n  deepest machine:")?;
            for line in render_pipeline(deepest).lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_sim::Unit;

    #[test]
    fn table_covers_requested_range() {
        let fig = run(25);
        assert_eq!(fig.plans.len(), 24);
        assert_eq!(fig.plans[0].0, 2);
        assert_eq!(fig.plans.last().unwrap().0, 25);
    }

    #[test]
    fn expansion_inserts_into_all_three_paper_units() {
        // "We insert extra stages in Decode, Cache Access and E-Unit Pipe,
        // simultaneously": from 2 to 25 stages every one of them must grow.
        let fig = run(25);
        let first = fig.plans[0].1;
        let last = fig.plans.last().unwrap().1;
        assert!(last.decode > first.decode);
        assert!(last.cache > first.cache);
        assert!(last.execute > first.execute);
    }

    #[test]
    fn render_marks_merged_units() {
        let shallow = StagePlan::try_for_depth(2).expect("valid depth");
        let art = render_pipeline(&shallow);
        assert!(art.contains("merged"), "{art}");
        let deep = StagePlan::try_for_depth(20).expect("valid depth");
        let art = render_pipeline(&deep);
        assert!(!art.contains("merged"), "{art}");
        assert!(art.contains("RR:"));
        assert!(art.contains("RX:"));
    }

    #[test]
    fn rx_flow_contains_memory_segment() {
        let art = render_pipeline(&StagePlan::try_for_depth(14).expect("valid depth"));
        assert!(art.contains("agen"));
        assert!(art.contains("cache"));
        assert!(art.contains("addr Q"));
    }

    #[test]
    fn display_lists_every_depth() {
        let s = run(10).to_string();
        for d in 2..=10 {
            assert!(s.contains(&format!("\n  {d:>5} ")), "missing depth {d}");
        }
    }

    #[test]
    fn scaled_units_match_unit_enum() {
        // The figure's columns are exactly the scaled units.
        assert_eq!(
            Unit::SCALED,
            [Unit::Decode, Unit::Agen, Unit::Cache, Unit::Execute]
        );
    }
}
