//! Figure 9: the effect of the latch-growth exponent β on the optimum
//! pipeline depth.
//!
//! Theory curves for β ∈ {1.0, 1.1, 1.3, 1.5, 1.8}: the optimum is a strong
//! function of β, shrinking as latch growth steepens; for β > 2 (with
//! m = 3) the optimum collapses toward a single-stage design.

use crate::extract::ExtractedParams;
use crate::sweep::RunConfig;
use pipedepth_core::{
    latch_growth_sweep, ClockGating, MetricExponent, PipelineModel, PowerParams, SweepConfig,
    TechParams,
};
use pipedepth_workloads::{suite_class, WorkloadClass};
use std::fmt;

/// Result of the Figure 9 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// Latch-growth exponents swept.
    pub betas: Vec<f64>,
    /// Optimum depth at each β (None ⇒ unpipelined/boundary).
    pub optima: Vec<Option<f64>>,
    /// Depths the normalised curves are sampled at.
    pub depths: Vec<f64>,
    /// Normalised metric curves, one per β.
    pub curves: Vec<(f64, Vec<f64>)>,
}

/// The β values of the paper's Fig. 9.
pub const BETAS: [f64; 5] = [1.0, 1.1, 1.3, 1.5, 1.8];

/// Runs Figure 9 for a workload-parameter extraction.
pub fn run_with_params(extracted: &ExtractedParams, config: &RunConfig) -> Fig9 {
    let power = PowerParams::with_leakage_fraction(
        config.leakage_fraction,
        &TechParams::paper(),
        config.ref_depth as f64,
    )
    .with_gating(ClockGating::Complete {
        kappa: extracted.kappa.max(1e-6),
    });
    let sweep = SweepConfig {
        tech: TechParams::paper(),
        workload: extracted.workload_params(),
        power,
        m: MetricExponent::BIPS3_PER_WATT,
        ref_depth: config.ref_depth as f64,
    };
    let points = latch_growth_sweep(&sweep, &BETAS);
    let depths: Vec<f64> = (1..=28).map(|p| p as f64).collect();
    let curves = BETAS
        .iter()
        .map(|&beta| {
            let model =
                PipelineModel::new(sweep.tech, sweep.workload, power.with_latch_growth(beta));
            let raw: Vec<f64> = depths
                .iter()
                .map(|&p| model.metric(p, MetricExponent::BIPS3_PER_WATT))
                .collect();
            let max = raw.iter().cloned().fold(f64::MIN, f64::max);
            (beta, raw.into_iter().map(|v| v / max).collect())
        })
        .collect();
    Fig9 {
        betas: BETAS.to_vec(),
        optima: points.iter().map(|p| p.optimum.depth()).collect(),
        depths,
        curves,
    }
}

/// Runs Figure 9 end to end (parameters from the first SPECint workload).
pub fn run(config: &RunConfig) -> Fig9 {
    let w = suite_class(WorkloadClass::SpecInt)
        .into_iter()
        .next()
        .expect("SPECint class populated");
    let curve = crate::sweep::sweep_workload(&w, config);
    run_with_params(&curve.extracted, config)
}

/// Registry spec: the latch-growth-exponent sweep with `fig9.csv`.
#[derive(Debug)]
pub struct Spec;

impl crate::experiment::Experiment for Spec {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn title(&self) -> &'static str {
        "optimum depth vs latch-growth exponent β (theory)"
    }

    fn needs_curves(&self) -> bool {
        true
    }

    fn run(&self, ctx: &crate::experiment::Context) -> crate::experiment::ExperimentOutput {
        let spec_curve = ctx.curve_for(WorkloadClass::SpecInt);
        let fig = run_with_params(&spec_curve.extracted, &ctx.config);
        let named: Vec<(String, &[f64])> = fig
            .curves
            .iter()
            .map(|(beta, ys)| (format!("beta_{beta}"), ys.as_slice()))
            .collect();
        let columns: Vec<(&str, &[f64])> = named.iter().map(|(n, ys)| (n.as_str(), *ys)).collect();
        let table = crate::report::Table::from_series("depth", &fig.depths, &columns)
            .expect("β curves share the depth axis");
        let out = crate::experiment::ExperimentOutput {
            summary: fig.to_string(),
            artifacts: vec![crate::experiment::Artifact::new("fig9.csv", table.to_csv())],
        };
        let _ = ctx.outcomes.fig9.set(fig);
        out
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 9 — optimum depth vs latch-growth exponent β (theory)"
        )?;
        for (beta, opt) in self.betas.iter().zip(&self.optima) {
            match opt {
                Some(d) => writeln!(f, "  β = {beta:<4} → optimum {d:.1} stages")?,
                None => writeln!(f, "  β = {beta:<4} → no pipelined optimum")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn extracted() -> ExtractedParams {
        ExtractedParams {
            alpha: 2.5,
            gamma: 0.4,
            hazard_rate: 0.15,
            kappa: 0.5,
            memory_time_fo4: 0.0,
            ref_depth: 10,
        }
    }

    #[test]
    fn beta_shrinks_optimum() {
        let fig = run_with_params(&extracted(), &RunConfig::default());
        let depths: Vec<f64> = fig.optima.iter().map(|o| o.unwrap_or(1.0)).collect();
        for w in depths.windows(2) {
            assert!(w[1] < w[0], "optima must shrink with β: {depths:?}");
        }
    }

    #[test]
    fn beta_sensitivity_is_strong() {
        // "the optimum design point is a strong function of β": going from
        // 1.0 to 1.8 should at least halve the optimum.
        let fig = run_with_params(&extracted(), &RunConfig::default());
        let d_lo = fig.optima.first().unwrap().unwrap();
        let d_hi = fig.optima.last().unwrap().unwrap_or(1.0);
        assert!(d_hi < 0.6 * d_lo, "{d_lo} → {d_hi}");
    }

    #[test]
    fn curves_normalised_and_sampled() {
        let fig = run_with_params(&extracted(), &RunConfig::default());
        assert_eq!(fig.curves.len(), BETAS.len());
        for (_, ys) in &fig.curves {
            assert_eq!(ys.len(), fig.depths.len());
            let max = ys.iter().cloned().fold(f64::MIN, f64::max);
            assert!((max - 1.0).abs() < 1e-12);
        }
    }
}
