//! Cell-level simulation runner shared by every experiment.
//!
//! A sweep decomposes into independent *cells* — one (workload × depth ×
//! machine) simulation each, see [`CellSpec`] — which a [`Runner`] executes
//! on a worker pool with dynamic work distribution: workers pull the next
//! cell off a shared atomic index, so one slow workload never idles the
//! other threads the way static chunking did. Finished cells land in a
//! shared content-keyed [`SimCache`], so figures that re-visit the same
//! machine (the gating-degree extension, the ablation baseline, the
//! issue-policy in-order arm) reuse the suite sweep instead of
//! re-simulating it.
//!
//! Cell results are deterministic and independent, so the assembled curves
//! are identical for any thread count; `threads = 1` executes in submission
//! order on the calling thread.
//!
//! Trace production is amortised separately from simulation: the runner
//! owns a content-addressed [`TraceArena`], and before fanning a batch out
//! it *pre-stages* every distinct (model, seed, length) stream the batch
//! needs — serially, on the calling thread. Workers then only ever look
//! streams up, so no generation work is duplicated, no worker blocks on
//! another's generation, and the arena's hit/miss counters are identical
//! for any thread count.

mod cache;
mod cell;

pub use cache::{CacheStats, SimCache};
pub use cell::CellSpec;

use crate::extract::extract_from_report;
use crate::sweep::{DepthPoint, RunConfig, WorkloadCurve};
use pipedepth_core::eval::TieredCache;
use pipedepth_power::metric;
use pipedepth_sim::{
    replay_sweep, AnnotatedTrace, AnnotationKey, AnnotationStore, SimConfig, SimReport,
};
use pipedepth_telemetry::{Stopwatch, Telemetry, DEFAULT_TIME_BUCKETS_US};
use pipedepth_trace::{ArenaStats, Instruction, TraceArena, TraceRequest};
use pipedepth_workloads::Workload;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// One pending cell's pre-staged inputs: the trace-request key and the
/// arena-resident stream, or `None` when the arena is disabled.
type StagedCell = Option<(u64, Arc<[Instruction]>)>;

/// One schedulable unit of a batch: either a single cell on the stage
/// engine, or a whole same-workload depth group on the annotate/replay
/// sweep kernel.
#[derive(Debug)]
enum WorkItem {
    /// Index into the pending list; runs the full stage engine.
    Cell(usize),
    /// Pending indices differing only in pipeline depth, plus the one
    /// annotation their replay lanes share.
    Group {
        members: Vec<usize>,
        annotation: Arc<AnnotatedTrace>,
    },
}

/// Executes simulation cells on a worker pool, backed by a shared cache.
#[derive(Debug)]
pub struct Runner {
    threads: usize,
    /// Shared result cache — a memory tier with an optional warm tier
    /// loaded from a persistent store; `None` re-simulates every cell,
    /// every batch (the `--no-cache` escape hatch). In-batch duplicates
    /// still coalesce.
    cache: Option<TieredCache<CellSpec, SimReport>>,
    telemetry: Telemetry,
    /// Shared trace store; `None` routes every cell through the streaming
    /// path (the `--no-arena` escape hatch).
    arena: Option<TraceArena>,
    /// Routes same-workload depth groups through the annotate-once /
    /// replay-per-depth kernel; `false` restores the per-cell engine path
    /// (the `--no-sweep-kernel` escape hatch).
    sweep_kernel: bool,
    /// Shared annotations, one per (stream, cache, predictor), reused
    /// across batches exactly as the arena shares streams.
    annotations: AnnotationStore,
    /// Watermark of the process-global fingerprint-memo hit counter, so
    /// each batch flushes only its own delta into telemetry.
    memo_hits_seen: AtomicU64,
}

impl Runner {
    /// A runner with an explicit worker count (`0` means one worker per
    /// available CPU).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            threads
        };
        Runner {
            threads,
            cache: Some(TieredCache::new()),
            telemetry: Telemetry::disabled(),
            arena: Some(TraceArena::new()),
            sweep_kernel: true,
            annotations: AnnotationStore::new(),
            memo_hits_seen: AtomicU64::new(pipedepth_trace::fingerprint_memo_hits()),
        }
    }

    /// A single-threaded runner: cells run in submission order on the
    /// calling thread.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// Attaches a telemetry handle; scheduling counters, per-cell timing
    /// histograms, arena counters and the engine/trace metrics of every
    /// executed cell report into it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        if let Some(arena) = self.arena.as_mut() {
            arena.attach_telemetry(&telemetry);
        }
        self.annotations.attach_telemetry(&telemetry);
        self.telemetry = telemetry;
        self
    }

    /// Disables the trace arena: every cell regenerates its stream through
    /// the streaming engine path, as before the arena existed. An escape
    /// hatch for memory-constrained hosts and for A/B-ing the two paths.
    pub fn without_arena(mut self) -> Self {
        self.arena = None;
        self
    }

    /// Disables the result cache: every batch re-simulates its cells (the
    /// `--no-cache` escape hatch; in-batch duplicates still coalesce). An
    /// A/B lever for the cache itself and a memory cap for huge sweeps.
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Attaches a warm tier of finished reports — the decoded image of a
    /// previous run's persistent snapshot. Memory misses then probe the
    /// warm tier and promote hits, so previously computed cells skip
    /// simulation entirely. No-op under `--no-cache`: a disabled cache
    /// means *no* reuse, warm or hot.
    pub fn with_warm_reports(mut self, warm: SimCache) -> Self {
        if let Some(cache) = self.cache.as_mut() {
            cache.attach_warm(warm);
        }
        self
    }

    /// Disables the annotate/replay sweep kernel: every cell runs the full
    /// stage engine, as before the kernel existed. The `--no-sweep-kernel`
    /// escape hatch, and the A/B lever the equivalence CI check flips —
    /// the two paths are bit-identical by construction (see the
    /// `replay_equivalence` suite in `pipedepth-sim`).
    pub fn without_sweep_kernel(mut self) -> Self {
        self.sweep_kernel = false;
        self
    }

    /// Worker count this runner schedules onto.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache hit/miss counters so far; `None` when the cache is disabled.
    /// These are the memory-tier classification counters the runner has
    /// always reported — attaching a warm tier does not change them.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(TieredCache::stats)
    }

    /// Warm-tier probe counters (`None` when the cache is disabled or no
    /// warm tier is attached): `hits` = cells served from the loaded
    /// snapshot instead of simulation.
    pub fn warm_report_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().and_then(TieredCache::warm_stats)
    }

    /// A deterministic snapshot of every finished cell in the memory tier,
    /// for the persistence layer to encode and publish. Empty under
    /// `--no-cache`.
    pub fn export_reports(&self) -> Vec<(CellSpec, Arc<SimReport>)> {
        self.cache
            .as_ref()
            .map(TieredCache::entries)
            .unwrap_or_default()
    }

    /// Seeds the annotation store from a persistent snapshot, so warm
    /// sweep groups skip the annotate pass. Counter-neutral (seeded
    /// entries count neither hits nor misses); returns how many entries
    /// were actually inserted. No-op without the sweep kernel — the store
    /// would never be consulted.
    pub fn seed_annotations(
        &self,
        seeds: impl IntoIterator<Item = (AnnotationKey, Arc<AnnotatedTrace>)>,
    ) -> u64 {
        if !self.sweep_kernel {
            return 0;
        }
        seeds
            .into_iter()
            .filter(|(key, notes)| self.annotations.seed(*key, Arc::clone(notes)))
            .count() as u64
    }

    /// A deterministic snapshot of every annotation in the store, for the
    /// persistence layer to encode and publish.
    pub fn export_annotations(&self) -> Vec<(AnnotationKey, Arc<AnnotatedTrace>)> {
        self.annotations.export()
    }

    /// Arena service counters so far; `None` when the arena is disabled.
    pub fn arena_stats(&self) -> Option<ArenaStats> {
        self.arena.as_ref().map(TraceArena::stats)
    }

    /// Whether the annotate/replay sweep kernel is enabled.
    pub fn sweep_kernel_enabled(&self) -> bool {
        self.sweep_kernel
    }

    /// Annotation-store counters so far (all zero until the first depth
    /// group runs through the sweep kernel).
    pub fn annotation_stats(&self) -> pipedepth_sim::AnnotateStats {
        self.annotations.stats()
    }

    /// Runs a batch of cells, returning one report per requested cell in
    /// order. Cells already in the cache — or repeated within the batch —
    /// are simulated only once.
    pub fn run_cells(&self, cells: &[CellSpec]) -> Vec<Arc<SimReport>> {
        let mut results: Vec<Option<Arc<SimReport>>> = vec![None; cells.len()];
        // Unique cache misses, each with the result slots waiting on it.
        let mut pending: Vec<(u64, CellSpec)> = Vec::new();
        let mut waiters: Vec<Vec<usize>> = Vec::new();
        let mut hits: u64 = 0;
        for (i, cell) in cells.iter().enumerate() {
            let key = cell.key();
            if let Some(report) = self.cache.as_ref().and_then(|c| c.get(key, cell)) {
                results[i] = Some(report);
                hits += 1;
            } else if let Some(j) = pending.iter().position(|(k, c)| *k == key && c == cell) {
                waiters[j].push(i);
                hits += 1; // shares the one simulation below
            } else {
                pending.push((key, *cell));
                waiters.push(vec![i]);
            }
        }
        if let Some(cache) = &self.cache {
            cache.count_hits(hits);
            cache.count_misses(pending.len() as u64);
        }
        self.telemetry
            .counter("runner.cells_requested")
            .add(cells.len() as u64);
        self.telemetry.counter("runner.cache_hits").add(hits);
        self.telemetry
            .counter("runner.cells_simulated")
            .add(pending.len() as u64);

        let staged = self.pre_stage(&pending);
        let items = self.plan_items(&pending, &staged);
        let computed = self.execute_items(&pending, &items);
        self.flush_memo_hits();

        for (((key, spec), slots), report) in pending.into_iter().zip(waiters).zip(computed) {
            let inserted = match &self.cache {
                Some(cache) => cache.insert(key, spec, Arc::clone(&report)),
                None => false,
            };
            if inserted {
                self.telemetry.counter("runner.cache_inserts").inc();
            }
            for i in slots {
                results[i] = Some(Arc::clone(&report));
            }
        }
        results
            .into_iter()
            // analysis: allow(panic-path) — every slot is filled above: hits
            // in the classification loop, misses by their waiter lists
            .map(|r| r.expect("every requested cell resolved"))
            .collect()
    }

    /// Materialises every distinct trace the pending cells need into the
    /// arena, serially, before any worker starts. First request per
    /// distinct stream counts an arena miss (the one generation); each
    /// executed cell's lookup then counts a hit — so the counters are
    /// deterministic for any thread count, and workers never generate.
    /// Returns each cell's request key and staged stream (one entry per
    /// pending cell, `None` without an arena), so the sweep-kernel
    /// planner can annotate without extra arena traffic — and without
    /// recomputing a single fingerprint, keeping the memo-hit counter
    /// identical whether or not the kernel is enabled.
    fn pre_stage(&self, pending: &[(u64, CellSpec)]) -> Vec<StagedCell> {
        let Some(arena) = &self.arena else {
            return vec![None; pending.len()];
        };
        let mut by_key: BTreeMap<u64, Arc<[Instruction]>> = BTreeMap::new();
        pending
            .iter()
            .map(|(_, spec)| {
                let request = TraceRequest {
                    model: spec.model,
                    seed: spec.trace_seed,
                    len: spec.trace_len(),
                };
                let key = request.key();
                let trace = by_key
                    .entry(key)
                    .or_insert_with(|| {
                        arena.get_or_generate(request.model, request.seed, request.len)
                    })
                    .clone();
                Some((key, trace))
            })
            .collect()
    }

    /// Partitions the pending cells into schedulable work items. With the
    /// sweep kernel enabled (and the arena present), cells that differ
    /// only in pipeline depth become one [`WorkItem::Group`] sharing one
    /// annotation — annotated here, serially, so the annotation-store
    /// counters are deterministic for any thread count. Everything else
    /// stays a [`WorkItem::Cell`] on the stage engine.
    ///
    /// Grouping compares cells structurally ([`PartialEq`] with the depth
    /// field neutralised) rather than by hash, so enabling the kernel
    /// changes no fingerprint or cache-counter accounting.
    fn plan_items(&self, pending: &[(u64, CellSpec)], staged: &[StagedCell]) -> Vec<WorkItem> {
        if !self.sweep_kernel || self.arena.is_none() {
            return (0..pending.len()).map(WorkItem::Cell).collect();
        }
        let mates = |a: &CellSpec, b: &CellSpec| {
            a.model == b.model
                && a.trace_seed == b.trace_seed
                && a.warmup == b.warmup
                && a.instructions == b.instructions
                && SimConfig { depth: 0, ..a.sim } == SimConfig { depth: 0, ..b.sim }
        };
        let mut assigned = vec![false; pending.len()];
        let mut items = Vec::new();
        for i in 0..pending.len() {
            if assigned[i] {
                continue;
            }
            assigned[i] = true;
            let mut members = vec![i];
            for j in (i + 1)..pending.len() {
                if !assigned[j] && mates(&pending[i].1, &pending[j].1) {
                    assigned[j] = true;
                    members.push(j);
                }
            }
            if members.len() < 2 {
                items.push(WorkItem::Cell(i));
                continue;
            }
            let spec = &pending[i].1;
            let annotation = staged[i].as_ref().and_then(|(key, trace)| {
                self.annotations
                    .get_or_annotate(*key, trace, spec.sim.cache, spec.sim.predictor)
                    .ok()
            });
            match annotation {
                Some(annotation) => items.push(WorkItem::Group {
                    members,
                    annotation,
                }),
                // An unstaged stream or an unannotatable configuration
                // falls back to the engine path, which shares its
                // validation and error surface.
                None => items.extend(members.into_iter().map(WorkItem::Cell)),
            }
        }
        items
    }

    /// Executes the planned work items, in order when serial, otherwise
    /// via a shared atomic work index over scoped worker threads. Returns
    /// one report per pending cell, in pending order.
    fn execute_items(
        &self,
        pending: &[(u64, CellSpec)],
        items: &[WorkItem],
    ) -> Vec<Arc<SimReport>> {
        let workers = self.threads.min(items.len());
        let batch_start = Stopwatch::start();
        let busy_before = self.telemetry.counter("runner.worker_busy_us").value();
        let slots: Vec<OnceLock<Arc<SimReport>>> =
            (0..pending.len()).map(|_| OnceLock::new()).collect();
        if workers <= 1 {
            for item in items {
                self.execute_item(item, pending, &slots, batch_start);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        self.execute_item(item, pending, &slots, batch_start);
                    });
                }
            });
        }
        let reports: Vec<Arc<SimReport>> = slots
            .into_iter()
            // analysis: allow(panic-path) — the planner assigns every
            // pending index to exactly one work item, and workers drain
            // the shared index past items.len(), so no slot is left unset
            .map(|slot| slot.into_inner().expect("every planned cell executed"))
            .collect();
        if self.telemetry.is_enabled() && !pending.is_empty() {
            let wall_us = batch_start.elapsed_us();
            let busy_us = self
                .telemetry
                .counter("runner.worker_busy_us")
                .value()
                .saturating_sub(busy_before);
            if wall_us > 0.0 {
                self.telemetry
                    .gauge("runner.worker_utilization")
                    .set((busy_us as f64 / (workers.max(1) as f64 * wall_us)).clamp(0.0, 1.0));
            }
            if busy_us > 0 {
                // Engine throughput over the batch: simulated instructions
                // (warmup + measured) per worker-busy microsecond = MIPS.
                let simulated: u64 = pending
                    .iter()
                    .map(|(_, spec)| spec.warmup + spec.instructions)
                    .sum();
                self.telemetry
                    .gauge("runner.sim_mips")
                    .set(simulated as f64 / busy_us as f64);
            }
        }
        reports
    }

    /// Simulates one cell over the arena's shared stream, or through the
    /// streaming path when the arena is disabled.
    fn simulate(&self, spec: &CellSpec) -> SimReport {
        match &self.arena {
            Some(arena) => spec.execute_with(arena, &self.telemetry),
            None => spec.execute_streaming(&self.telemetry),
        }
    }

    /// Runs one cell, recording its queue wait (batch start to pickup) and
    /// simulation time when telemetry is enabled.
    fn execute_cell(&self, spec: &CellSpec, queued_at: Stopwatch) -> Arc<SimReport> {
        if !self.telemetry.is_enabled() {
            return Arc::new(self.simulate(spec));
        }
        let start = Stopwatch::start();
        self.telemetry
            .histogram("runner.queue_wait_us", &DEFAULT_TIME_BUCKETS_US)
            .record(queued_at.elapsed_us());
        let report = Arc::new(self.simulate(spec));
        let busy_us = start.elapsed_us();
        self.telemetry
            .histogram("runner.cell_time_us", &DEFAULT_TIME_BUCKETS_US)
            .record(busy_us);
        self.telemetry
            .counter("runner.worker_busy_us")
            .add(busy_us as u64);
        report
    }

    /// Executes one work item, filling the result slot of every pending
    /// cell it covers.
    fn execute_item(
        &self,
        item: &WorkItem,
        pending: &[(u64, CellSpec)],
        slots: &[OnceLock<Arc<SimReport>>],
        queued_at: Stopwatch,
    ) {
        match item {
            WorkItem::Cell(i) => {
                let report = self.execute_cell(&pending[*i].1, queued_at);
                // analysis: allow(panic-path) — the planner assigns each
                // pending index to exactly one work item
                slots[*i].set(report).expect("each cell planned once");
            }
            WorkItem::Group {
                members,
                annotation,
            } => {
                let reports = self.execute_group(members, annotation, pending, queued_at);
                for (&i, report) in members.iter().zip(reports) {
                    // analysis: allow(panic-path) — see the Cell arm
                    slots[i].set(report).expect("each cell planned once");
                }
            }
        }
    }

    /// Runs one depth group through the sweep kernel: every member lane
    /// advances through the shared annotation in a single pass. Arena and
    /// timing telemetry mirror the per-cell path — one arena lookup and
    /// one queue-wait/cell-time sample per member — so scheduling counters
    /// are invariant under the kernel A/B switch.
    fn execute_group(
        &self,
        members: &[usize],
        annotation: &AnnotatedTrace,
        pending: &[(u64, CellSpec)],
        queued_at: Stopwatch,
    ) -> Vec<Arc<SimReport>> {
        let start = Stopwatch::start();
        if let Some(arena) = &self.arena {
            for &i in members {
                let spec = &pending[i].1;
                let _ = arena.get_or_generate(spec.model, spec.trace_seed, spec.trace_len());
            }
        }
        let lead = &pending[members[0]].1;
        let configs: Vec<SimConfig> = members.iter().map(|&i| pending[i].1.sim).collect();
        let reports = replay_sweep(
            annotation,
            &configs,
            lead.warmup,
            lead.instructions,
            &self.telemetry,
        )
        // analysis: allow(panic-path) — the same configurations construct
        // engines on the per-cell path; annotation already validated the
        // cache and predictor, and the planner only groups engine-legal
        // cells
        .expect("sweep-kernel lanes share the engine's validated configs");
        if self.telemetry.is_enabled() {
            let wait_us = queued_at.elapsed_us();
            let busy_us = start.elapsed_us();
            let per_cell_us = busy_us / members.len() as f64;
            for _ in members {
                self.telemetry
                    .histogram("runner.queue_wait_us", &DEFAULT_TIME_BUCKETS_US)
                    .record(wait_us);
                self.telemetry
                    .histogram("runner.cell_time_us", &DEFAULT_TIME_BUCKETS_US)
                    .record(per_cell_us);
            }
            self.telemetry.counter("runner.sweep_kernel.groups").inc();
            self.telemetry
                .counter("runner.sweep_kernel.cells")
                .add(members.len() as u64);
            self.telemetry
                .counter("runner.worker_busy_us")
                .add(busy_us as u64);
        }
        reports.into_iter().map(Arc::new).collect()
    }

    /// Flushes the delta of the process-global [`WorkloadModel`]
    /// fingerprint-memo hit counter into telemetry, against this runner's
    /// own watermark.
    ///
    /// [`WorkloadModel`]: pipedepth_trace::WorkloadModel
    fn flush_memo_hits(&self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let seen = pipedepth_trace::fingerprint_memo_hits();
        let prev = self.memo_hits_seen.swap(seen, Ordering::Relaxed);
        self.telemetry
            .counter("trace.arena.fingerprint_memo_hits")
            .add(seen.saturating_sub(prev));
    }

    /// Sweeps one workload on the paper machine.
    pub fn sweep_workload(&self, workload: &Workload, config: &RunConfig) -> WorkloadCurve {
        self.sweep_workload_with(workload, config, SimConfig::paper)
    }

    /// Sweeps one workload with a custom machine builder (ablations and
    /// the issue-policy study vary the microarchitecture per depth).
    pub fn sweep_workload_with(
        &self,
        workload: &Workload,
        config: &RunConfig,
        make_sim: impl Fn(u32) -> SimConfig,
    ) -> WorkloadCurve {
        let cells = depth_cells(workload, config, &make_sim);
        let reports = self.run_cells(&cells);
        curve_from_reports(workload, config, &reports)
    }

    /// Sweeps many workloads as one flat cell batch — the scheduler
    /// distributes individual (workload, depth) cells, not whole workloads.
    pub fn sweep_all(&self, workloads: &[Workload], config: &RunConfig) -> Vec<WorkloadCurve> {
        let cells: Vec<CellSpec> = workloads
            .iter()
            .flat_map(|w| depth_cells(w, config, &SimConfig::paper))
            .collect();
        let reports = self.run_cells(&cells);
        workloads
            .iter()
            .zip(reports.chunks(config.depths.len()))
            .map(|(w, chunk)| curve_from_reports(w, config, chunk))
            .collect()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new(0)
    }
}

/// The cells of one workload's depth sweep.
fn depth_cells(
    workload: &Workload,
    config: &RunConfig,
    make_sim: &impl Fn(u32) -> SimConfig,
) -> Vec<CellSpec> {
    config
        .depths
        .iter()
        .map(|&depth| {
            CellSpec::new(
                workload,
                make_sim(depth),
                config.warmup,
                config.instructions,
            )
        })
        .collect()
}

/// Assembles a [`WorkloadCurve`] from one report per configured depth,
/// extracting theory parameters at the reference depth (falling back to
/// the deepest point when the reference is not in the sweep).
fn curve_from_reports(
    workload: &Workload,
    config: &RunConfig,
    reports: &[Arc<SimReport>],
) -> WorkloadCurve {
    assert_eq!(
        reports.len(),
        config.depths.len(),
        "one report per configured depth"
    );
    let gated = config.power_gated();
    let ungated = config.power_ungated();
    let mut points = Vec::with_capacity(config.depths.len());
    let mut extracted = None;
    for (&depth, report) in config.depths.iter().zip(reports) {
        if depth == config.ref_depth
            || (extracted.is_none() && Some(&depth) == config.depths.last())
        {
            extracted = Some(extract_from_report(report, &gated));
        }
        points.push(DepthPoint {
            depth,
            throughput: report.throughput(),
            metric_gated: [
                metric(report, &gated, 1.0),
                metric(report, &gated, 2.0),
                metric(report, &gated, 3.0),
            ],
            metric_ungated: [
                metric(report, &ungated, 1.0),
                metric(report, &ungated, 2.0),
                metric(report, &ungated, 3.0),
            ],
            cpi: report.cpi(),
        });
    }
    WorkloadCurve {
        workload: workload.clone(),
        points,
        // analysis: allow(panic-path) — the assert above pins reports to
        // depths, and the loop extracts at the last depth if nothing else
        extracted: extracted.expect("sweep covered at least one depth"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::representatives;

    fn tiny() -> RunConfig {
        RunConfig {
            warmup: 2_000,
            instructions: 4_000,
            depths: vec![4, 8, 12],
            ..RunConfig::default()
        }
    }

    fn cells_of(w: &Workload, cfg: &RunConfig) -> Vec<CellSpec> {
        depth_cells(w, cfg, &SimConfig::paper)
    }

    #[test]
    fn repeat_batches_hit_the_cache() {
        let runner = Runner::serial();
        let cells = cells_of(&representatives()[0], &tiny());
        let first = runner.run_cells(&cells);
        let again = runner.run_cells(&cells);
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b), "second batch must reuse reports");
        }
        let stats = runner.cache_stats().expect("cache enabled by default");
        assert_eq!(stats.misses, cells.len() as u64);
        assert_eq!(stats.hits, cells.len() as u64);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disabled_cache_re_simulates_but_matches() {
        let runner = Runner::serial().without_cache();
        assert!(runner.cache_stats().is_none());
        let cells = cells_of(&representatives()[0], &tiny());
        let first = runner.run_cells(&cells);
        let again = runner.run_cells(&cells);
        for (a, b) in first.iter().zip(&again) {
            assert!(!Arc::ptr_eq(a, b), "no cache means fresh reports");
            assert_eq!(**a, **b, "results must still be deterministic");
        }
        let cached = Runner::serial().run_cells(&cells);
        for (a, b) in first.iter().zip(&cached) {
            assert_eq!(**a, **b, "cache must not change results");
        }
    }

    #[test]
    fn disabled_cache_still_coalesces_within_a_batch() {
        let runner = Runner::serial().without_cache();
        let base = cells_of(&representatives()[0], &tiny());
        let doubled: Vec<CellSpec> = base.iter().chain(base.iter()).copied().collect();
        let reports = runner.run_cells(&doubled);
        for (a, b) in reports[..base.len()].iter().zip(&reports[base.len()..]) {
            assert!(Arc::ptr_eq(a, b), "in-batch duplicates share one run");
        }
    }

    #[test]
    fn in_batch_duplicates_simulate_once() {
        let runner = Runner::serial();
        let base = cells_of(&representatives()[0], &tiny());
        let doubled: Vec<CellSpec> = base.iter().chain(base.iter()).copied().collect();
        let reports = runner.run_cells(&doubled);
        let stats = runner.cache_stats().expect("cache enabled by default");
        assert_eq!(stats.misses, base.len() as u64);
        for (a, b) in reports[..base.len()].iter().zip(&reports[base.len()..]) {
            assert!(Arc::ptr_eq(a, b));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ws = representatives();
        let cfg = tiny();
        let serial = Runner::serial().sweep_all(&ws, &cfg);
        let parallel = Runner::new(4).sweep_all(&ws, &cfg);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn arena_and_streaming_paths_agree() {
        let ws = representatives();
        let cfg = tiny();
        let with_arena = Runner::serial().sweep_all(&ws, &cfg);
        let streaming = Runner::serial().without_arena().sweep_all(&ws, &cfg);
        assert_eq!(with_arena, streaming);
    }

    #[test]
    fn arena_counters_are_thread_count_invariant() {
        let ws = representatives();
        let cfg = tiny();
        let stats_with = |threads: usize| {
            let runner = Runner::new(threads);
            runner.sweep_all(&ws, &cfg);
            runner.arena_stats().expect("arena enabled by default")
        };
        let serial = stats_with(1);
        let parallel = stats_with(4);
        assert_eq!(serial, parallel);
        // One materialisation per workload; every simulated cell then hits.
        assert_eq!(serial.misses, ws.len() as u64);
        assert_eq!(serial.hits, (ws.len() * cfg.depths.len()) as u64);
        assert!(serial.hit_rate() > 0.7, "hit rate {}", serial.hit_rate());
        assert!(Runner::serial().without_arena().arena_stats().is_none());
    }

    #[test]
    fn sweep_all_matches_per_workload_sweeps() {
        let ws = representatives();
        let cfg = tiny();
        let runner = Runner::new(3);
        let all = runner.sweep_all(&ws, &cfg);
        let single = Runner::serial();
        for (w, curve) in ws.iter().zip(&all) {
            assert_eq!(&single.sweep_workload(w, &cfg), curve);
        }
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn telemetry_counters_are_thread_count_invariant() {
        let ws = representatives();
        let cfg = tiny();
        let run = |threads: usize| {
            let telemetry = Telemetry::new();
            let runner = Runner::new(threads).with_telemetry(telemetry.clone());
            runner.sweep_all(&ws, &cfg);
            runner.sweep_all(&ws, &cfg); // second pass exercises cache hits
            telemetry.snapshot()
        };
        let serial = run(1);
        let parallel = run(4);
        let cells = (ws.len() * cfg.depths.len()) as u64;
        assert_eq!(serial.counter("runner.cells_requested"), 2 * cells);
        assert_eq!(serial.counter("runner.cells_simulated"), cells);
        assert_eq!(serial.counter("runner.cache_hits"), cells);
        assert_eq!(serial.counter("runner.cache_inserts"), cells);
        for name in [
            "runner.cells_requested",
            "runner.cells_simulated",
            "runner.cache_hits",
            "runner.cache_inserts",
            "sim.instructions",
            "sim.predictor.hits",
            "sim.predictor.misses",
            "trace.instructions_generated",
            "trace.arena.hits",
            "trace.arena.misses",
            "trace.arena.instructions_materialized",
        ] {
            assert_eq!(serial.counter(name), parallel.counter(name), "{name}");
            assert!(serial.get(name).is_some(), "{name} missing");
        }
        // Timing histograms observe exactly one sample per simulated cell
        // regardless of scheduling.
        for snap in [&serial, &parallel] {
            let hist = snap.histogram("runner.cell_time_us").expect("cell timing");
            assert_eq!(hist.count, cells);
            let wait = snap.histogram("runner.queue_wait_us").expect("queue wait");
            assert_eq!(wait.count, cells);
        }
    }

    #[test]
    fn sweep_kernel_matches_the_engine_path_bit_for_bit() {
        let ws = representatives();
        let cfg = tiny();
        let kernel = Runner::serial().sweep_all(&ws, &cfg);
        let engine = Runner::serial().without_sweep_kernel().sweep_all(&ws, &cfg);
        assert_eq!(kernel, engine, "--no-sweep-kernel must not change curves");
    }

    #[test]
    fn sweep_kernel_preserves_arena_and_cache_counters() {
        let ws = representatives();
        let cfg = tiny();
        let stats = |runner: Runner| {
            runner.sweep_all(&ws, &cfg);
            (
                runner.arena_stats().expect("arena on"),
                runner.cache_stats().expect("cache on"),
            )
        };
        let (arena_on, cache_on) = stats(Runner::serial());
        let (arena_off, cache_off) = stats(Runner::serial().without_sweep_kernel());
        assert_eq!(
            arena_on, arena_off,
            "kernel must not perturb arena counters"
        );
        assert_eq!(cache_on.hits, cache_off.hits);
        assert_eq!(cache_on.misses, cache_off.misses);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn sweep_kernel_groups_whole_depth_sweeps() {
        let ws = representatives();
        let cfg = tiny();
        let telemetry = Telemetry::new();
        let runner = Runner::new(2).with_telemetry(telemetry.clone());
        runner.sweep_all(&ws, &cfg);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("runner.sweep_kernel.groups"), ws.len() as u64);
        assert_eq!(
            snap.counter("runner.sweep_kernel.cells"),
            (ws.len() * cfg.depths.len()) as u64
        );
        // One annotation pass per workload stream, reused by every lane.
        assert_eq!(snap.counter("trace.annotate.misses"), ws.len() as u64);
        assert_eq!(snap.counter("trace.annotate.hits"), 0);
        // Scheduling histograms still observe one sample per cell.
        let cells = (ws.len() * cfg.depths.len()) as u64;
        let hist = snap.histogram("runner.cell_time_us").expect("cell timing");
        assert_eq!(hist.count, cells);
        let wait = snap.histogram("runner.queue_wait_us").expect("queue wait");
        assert_eq!(wait.count, cells);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn singletons_and_disabled_kernel_skip_grouping() {
        let ws = representatives();
        let single_depth = RunConfig {
            depths: vec![8],
            ..tiny()
        };
        let telemetry = Telemetry::new();
        let runner = Runner::serial().with_telemetry(telemetry.clone());
        runner.sweep_all(&ws, &single_depth);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("runner.sweep_kernel.groups"), 0);
        assert_eq!(snap.counter("runner.sweep_kernel.cells"), 0);

        let telemetry = Telemetry::new();
        let runner = Runner::serial()
            .without_sweep_kernel()
            .with_telemetry(telemetry.clone());
        runner.sweep_all(&ws, &tiny());
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("runner.sweep_kernel.groups"), 0);
        assert_eq!(snap.counter("trace.annotate.misses"), 0);
    }

    #[test]
    fn kernel_groups_custom_machines_separately() {
        // Width-2 cells group with each other but never with the paper
        // machine: grouping compares the full depth-neutralised config.
        let runner = Runner::serial();
        let w = &representatives()[0];
        let cfg = tiny();
        let paper = runner.sweep_workload(w, &cfg);
        let wide = runner.sweep_workload_with(w, &cfg, |depth| SimConfig {
            width: 2,
            ..SimConfig::paper(depth)
        });
        let reference = Runner::serial().without_sweep_kernel();
        assert_eq!(paper, reference.sweep_workload(w, &cfg));
        assert_eq!(
            wide,
            reference.sweep_workload_with(w, &cfg, |depth| SimConfig {
                width: 2,
                ..SimConfig::paper(depth)
            })
        );
    }

    #[test]
    fn custom_machines_do_not_collide_with_paper_cells() {
        let runner = Runner::serial();
        let w = &representatives()[0];
        let cfg = tiny();
        let paper = runner.sweep_workload(w, &cfg);
        let wide = runner.sweep_workload_with(w, &cfg, |depth| SimConfig {
            width: 2,
            ..SimConfig::paper(depth)
        });
        assert_ne!(paper.points, wide.points);
        let stats = runner.cache_stats().expect("cache enabled by default");
        assert_eq!(stats.misses, 2 * cfg.depths.len() as u64);
    }
}
