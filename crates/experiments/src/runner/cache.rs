//! Content-keyed, in-memory cache of finished simulation cells.
//!
//! Figures overlap heavily in the cells they need — the gating-degree
//! extension re-evaluates exactly the cells of the main suite sweep, the
//! ablation baseline is the paper machine, the issue-policy study's
//! in-order arm likewise — so one shared cache turns those re-runs into
//! lookups. Keys come from [`CellSpec::key`]; collisions are resolved by
//! exact spec comparison.

use super::cell::CellSpec;
use pipedepth_sim::SimReport;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/insert counters of a [`SimCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requested cells served without a fresh simulation.
    pub hits: u64,
    /// Cells that had to be simulated.
    pub misses: u64,
    /// Distinct cells stored since creation.
    pub inserts: u64,
}

impl CacheStats {
    /// Total cells requested.
    pub fn requested(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requested() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requested() as f64
        }
    }
}

/// One key's entries; the spec is kept alongside the report to resolve
/// hash collisions by exact comparison.
type Bucket = Vec<(CellSpec, Arc<SimReport>)>;

/// Shared simulation cache. Thread-safe; reports are handed out as
/// [`Arc`]s so concurrent readers never copy a report.
#[derive(Debug, Default)]
pub struct SimCache {
    buckets: Mutex<BTreeMap<u64, Bucket>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// Looks up a finished cell without touching the hit/miss counters.
    pub fn get(&self, key: u64, spec: &CellSpec) -> Option<Arc<SimReport>> {
        let buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        buckets
            .get(&key)?
            .iter()
            .find(|(s, _)| s == spec)
            .map(|(_, r)| Arc::clone(r))
    }

    /// Stores a finished cell. Returns whether the cell was actually
    /// inserted (false when an equal spec was already present).
    pub fn insert(&self, key: u64, spec: CellSpec, report: Arc<SimReport>) -> bool {
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(key).or_default();
        if bucket.iter().any(|(s, _)| s == &spec) {
            return false;
        }
        bucket.push((spec, report));
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Records cells served without simulation.
    pub fn count_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records cells that were simulated.
    pub fn count_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of distinct cells stored.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when no cell has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss/insert counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_sim::SimConfig;
    use pipedepth_workloads::representatives;

    fn spec(depth: u32) -> CellSpec {
        CellSpec::new(&representatives()[0], SimConfig::paper(depth), 200, 400)
    }

    #[test]
    fn round_trips_a_report() {
        let cache = SimCache::new();
        let s = spec(6);
        assert!(cache.get(s.key(), &s).is_none());
        let report = Arc::new(s.execute());
        cache.insert(s.key(), s, Arc::clone(&report));
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(s.key(), &s).expect("stored"), *report);
    }

    #[test]
    fn distinguishes_colliding_specs_by_equality() {
        // Force both specs into the same bucket to exercise the
        // equality check on lookup.
        let cache = SimCache::new();
        let a = spec(6);
        let b = spec(8);
        let report_a = Arc::new(a.execute());
        cache.insert(42, a, report_a);
        assert!(cache.get(42, &b).is_none());
        assert!(cache.get(42, &a).is_some());
    }

    #[test]
    fn duplicate_inserts_keep_one_entry() {
        let cache = SimCache::new();
        let s = spec(6);
        let report = Arc::new(s.execute());
        cache.insert(s.key(), s, Arc::clone(&report));
        cache.insert(s.key(), s, report);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = SimCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.count_misses(3);
        cache.count_hits(1);
        let stats = cache.stats();
        assert_eq!(stats.requested(), 4);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }
}
