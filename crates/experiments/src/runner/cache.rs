//! Content-keyed, in-memory cache of finished simulation cells.
//!
//! Figures overlap heavily in the cells they need — the gating-degree
//! extension re-evaluates exactly the cells of the main suite sweep, the
//! ablation baseline is the paper machine, the issue-policy study's
//! in-order arm likewise — so one shared cache turns those re-runs into
//! lookups. Keys come from [`CellSpec::key`]; collisions are resolved by
//! exact spec comparison.
//!
//! The implementation is no longer private to the runner: it was promoted
//! to [`pipedepth_core::eval::ShardedCache`] so the `pipedepth-serve`
//! evaluation service consumes the *same* sharded, poison-tolerant cache
//! for its `EvalOutcome`s. This module pins the runner's instantiation
//! (simulation cells mapping to shared [`SimReport`]s) and its tests.

use super::cell::CellSpec;
use pipedepth_core::eval::ShardedCache;
use pipedepth_sim::SimReport;

pub use pipedepth_core::eval::CacheStats;

/// Shared simulation cache: the workspace [`ShardedCache`] keyed by
/// [`CellSpec::key`], holding one [`SimReport`] per distinct cell.
/// Thread-safe; reports are handed out as [`std::sync::Arc`]s so
/// concurrent readers never copy a report.
pub type SimCache = ShardedCache<CellSpec, SimReport>;

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_core::eval::EvalCache;
    use pipedepth_sim::SimConfig;
    use pipedepth_workloads::representatives;
    use std::sync::Arc;

    fn spec(depth: u32) -> CellSpec {
        CellSpec::new(&representatives()[0], SimConfig::paper(depth), 200, 400)
    }

    #[test]
    fn round_trips_a_report() {
        let cache = SimCache::new();
        let s = spec(6);
        assert!(cache.get(s.key(), &s).is_none());
        let report = Arc::new(s.execute());
        cache.insert(s.key(), s, Arc::clone(&report));
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(s.key(), &s).expect("stored"), *report);
    }

    #[test]
    fn distinguishes_colliding_specs_by_equality() {
        // Force both specs into the same bucket to exercise the
        // equality check on lookup.
        let cache = SimCache::new();
        let a = spec(6);
        let b = spec(8);
        let report_a = Arc::new(a.execute());
        cache.insert(42, a, report_a);
        assert!(cache.get(42, &b).is_none());
        assert!(cache.get(42, &a).is_some());
    }

    #[test]
    fn duplicate_inserts_keep_one_entry() {
        let cache = SimCache::new();
        let s = spec(6);
        let report = Arc::new(s.execute());
        cache.insert(s.key(), s, Arc::clone(&report));
        cache.insert(s.key(), s, report);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cache = SimCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.count_misses(3);
        cache.count_hits(1);
        let stats = cache.stats();
        assert_eq!(stats.requested(), 4);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn usable_through_the_eval_cache_trait() {
        // The serve crate consumes the cache behind the trait; make sure
        // the runner's instantiation satisfies it too.
        let cache = SimCache::new();
        let dyn_cache: &dyn EvalCache<CellSpec, SimReport> = &cache;
        let s = spec(6);
        let report = Arc::new(s.execute());
        assert!(dyn_cache.insert(s.key(), s, report));
        assert!(dyn_cache.get(s.key(), &s).is_some());
        assert_eq!(dyn_cache.len(), 1);
    }
}
