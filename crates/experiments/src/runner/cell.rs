//! The unit of simulation work: one (workload, depth, machine) cell.
//!
//! A cell pins everything that influences a [`SimReport`]: the statistical
//! workload model, the trace seed, the full simulator configuration and the
//! warmup/measurement windows. Power configurations are deliberately *not*
//! part of a cell — every BIPS^m/W variant is cheap post-processing of the
//! same report, which is what lets different figures share simulations.

use pipedepth_sim::{Engine, SimConfig, SimReport};
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::{TraceGenerator, WorkloadModel};
use pipedepth_workloads::Workload;

/// One simulation cell: the complete, content-addressed description of a
/// single simulator run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Statistical model the trace is drawn from.
    pub model: WorkloadModel,
    /// Seed of the deterministic trace stream.
    pub trace_seed: u64,
    /// Full machine configuration (depth, caches, features, …).
    pub sim: SimConfig,
    /// Warmup instructions (statistics discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
}

impl CellSpec {
    /// The cell for `workload` on machine `sim` with the given windows.
    pub fn new(workload: &Workload, sim: SimConfig, warmup: u64, instructions: u64) -> Self {
        CellSpec {
            model: workload.model,
            trace_seed: workload.trace_seed,
            sim,
            warmup,
            instructions,
        }
    }

    /// Content hash of the cell (FNV-1a over the debug rendering, which
    /// round-trips every `f64` exactly). Collisions are resolved by full
    /// [`PartialEq`] comparison in the cache, so the hash only needs to
    /// spread well.
    pub fn key(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Runs the cell: fresh engine, fresh trace stream, warmup, measure.
    pub fn execute(&self) -> SimReport {
        self.execute_with(&Telemetry::disabled())
    }

    /// Runs the cell with engine and trace counters reporting into
    /// `telemetry` (a disabled handle makes this identical to
    /// [`execute`](Self::execute)).
    pub fn execute_with(&self, telemetry: &Telemetry) -> SimReport {
        let mut engine = Engine::new(self.sim).with_telemetry(telemetry.clone());
        let mut gen = TraceGenerator::with_telemetry(self.model, self.trace_seed, telemetry);
        engine.warm_up(&mut gen, self.warmup);
        engine.run(&mut gen, self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::representatives;

    fn cell(depth: u32) -> CellSpec {
        CellSpec::new(&representatives()[0], SimConfig::paper(depth), 500, 1_000)
    }

    #[test]
    fn identical_cells_share_a_key() {
        assert_eq!(cell(8).key(), cell(8).key());
        assert_eq!(cell(8), cell(8));
    }

    #[test]
    fn any_field_change_changes_the_key() {
        let base = cell(8);
        let deeper = cell(9);
        let longer = CellSpec {
            instructions: base.instructions + 1,
            ..base
        };
        let reseeded = CellSpec {
            trace_seed: base.trace_seed + 1,
            ..base
        };
        for other in [deeper, longer, reseeded] {
            assert_ne!(base.key(), other.key());
            assert_ne!(base, other);
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let spec = cell(6);
        assert_eq!(spec.execute(), spec.execute());
    }
}
