//! The unit of simulation work: one (workload, depth, machine) cell.
//!
//! A cell pins everything that influences a [`SimReport`]: the statistical
//! workload model, the trace seed, the full simulator configuration and the
//! warmup/measurement windows. Power configurations are deliberately *not*
//! part of a cell — every BIPS^m/W variant is cheap post-processing of the
//! same report, which is what lets different figures share simulations.

use pipedepth_sim::{Engine, SimConfig, SimReport};
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::{Fnv64, TraceArena, TraceGenerator, WorkloadModel};
use pipedepth_workloads::Workload;

/// One simulation cell: the complete, content-addressed description of a
/// single simulator run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Statistical model the trace is drawn from.
    pub model: WorkloadModel,
    /// Seed of the deterministic trace stream.
    pub trace_seed: u64,
    /// Full machine configuration (depth, caches, features, …).
    pub sim: SimConfig,
    /// Warmup instructions (statistics discarded).
    pub warmup: u64,
    /// Measured instructions.
    pub instructions: u64,
}

impl CellSpec {
    /// The cell for `workload` on machine `sim` with the given windows.
    pub fn new(workload: &Workload, sim: SimConfig, warmup: u64, instructions: u64) -> Self {
        CellSpec {
            model: workload.model,
            trace_seed: workload.trace_seed,
            sim,
            warmup,
            instructions,
        }
    }

    /// Content hash of the cell: structural FNV-1a over the bit patterns
    /// of every field, via the model and machine fingerprints — no
    /// intermediate `String` rendering, no allocation. Collisions are
    /// resolved by full [`PartialEq`] comparison in the cache, so the hash
    /// only needs to spread well.
    pub fn key(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.model.fingerprint())
            .write_u64(self.trace_seed)
            .write_u64(self.sim.fingerprint())
            .write_u64(self.warmup)
            .write_u64(self.instructions);
        h.finish()
    }

    /// Total trace length the cell consumes: the warmup window plus the
    /// measured window — the arena materialises exactly this many
    /// instructions per distinct stream.
    pub fn trace_len(&self) -> u64 {
        self.warmup + self.instructions
    }

    /// Runs the cell standalone: fresh engine, fresh streaming trace,
    /// warmup, measure. Equivalent to the arena path (see the
    /// slice-equivalence tests) but regenerates the trace; the runner uses
    /// [`execute_with`](Self::execute_with) instead.
    pub fn execute(&self) -> SimReport {
        self.execute_streaming(&Telemetry::disabled())
    }

    /// Streaming execution with engine and trace counters reporting into
    /// `telemetry` (a disabled handle makes this identical to
    /// [`execute`](Self::execute)). The `--no-arena` escape hatch routes
    /// every cell through here.
    pub fn execute_streaming(&self, telemetry: &Telemetry) -> SimReport {
        let mut engine = Engine::new(self.sim).with_telemetry(telemetry.clone());
        let mut gen = TraceGenerator::with_telemetry(self.model, self.trace_seed, telemetry);
        engine.warm_up(&mut gen, self.warmup);
        engine.run(&mut gen, self.instructions)
    }

    /// Arena execution — the hot path: borrows the cell's stream from
    /// `arena` (materialising on first request) and replays it through the
    /// engine's slice entry points, so N cells sharing a stream pay for
    /// one generation.
    pub fn execute_with(&self, arena: &TraceArena, telemetry: &Telemetry) -> SimReport {
        let trace = arena.get_or_generate(self.model, self.trace_seed, self.trace_len());
        let mut engine = Engine::new(self.sim).with_telemetry(telemetry.clone());
        let split = self.warmup as usize;
        engine.warm_up_slice(&trace[..split], self.warmup);
        engine.run_slice(&trace[split..], self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_workloads::representatives;

    fn cell(depth: u32) -> CellSpec {
        CellSpec::new(&representatives()[0], SimConfig::paper(depth), 500, 1_000)
    }

    #[test]
    fn identical_cells_share_a_key() {
        assert_eq!(cell(8).key(), cell(8).key());
        assert_eq!(cell(8), cell(8));
    }

    #[test]
    fn any_field_change_changes_the_key() {
        let base = cell(8);
        let deeper = cell(9);
        let longer = CellSpec {
            instructions: base.instructions + 1,
            ..base
        };
        let reseeded = CellSpec {
            trace_seed: base.trace_seed + 1,
            ..base
        };
        let rewarmed = CellSpec {
            warmup: base.warmup + 1,
            ..base
        };
        let remodelled = CellSpec::new(&representatives()[1], base.sim, 500, 1_000);
        for other in [deeper, longer, reseeded, rewarmed, remodelled] {
            assert_ne!(base.key(), other.key());
            assert_ne!(base, other);
        }
    }

    #[test]
    fn execution_is_deterministic() {
        let spec = cell(6);
        assert_eq!(spec.execute(), spec.execute());
    }

    #[test]
    fn arena_execution_matches_streaming() {
        let arena = TraceArena::new();
        let telemetry = Telemetry::disabled();
        for depth in [4, 12] {
            let spec = cell(depth);
            assert_eq!(spec.execute_with(&arena, &telemetry), spec.execute());
        }
        // Both depths drew the same (model, seed, length) stream.
        assert_eq!(arena.stats().misses, 1);
        assert_eq!(arena.stats().hits, 1);
    }
}
