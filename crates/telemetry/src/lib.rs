//! Lightweight metrics for the `pipedepth` simulation stack.
//!
//! The crate provides a [`Telemetry`] handle fronting a small metrics
//! registry — monotonic [`Counter`]s, [`Gauge`]s, fixed-bucket
//! [`Histogram`]s — plus span-style scoped timers ([`Span`]). The hot
//! layers of the workspace (the timing engine, the trace generator, the
//! cell runner) accept a handle and record into it; the `repro` driver
//! snapshots the registry into `results/manifest.json`.
//!
//! Two mechanisms keep the cost out of the simulation hot path:
//!
//! * **No-op handles.** [`Telemetry::disabled`] returns a handle with no
//!   registry behind it; every recording call is a single predictable
//!   branch. Layers flush *aggregate* counts once per simulation run, so
//!   even an enabled handle costs a handful of atomic adds per cell, not
//!   per instruction.
//! * **The `capture` feature.** With the feature off (build with
//!   `--no-default-features`), every type in this crate is a zero-sized
//!   stub and every method an inlined empty body: telemetry compiles out
//!   entirely.
//!
//! Counters aggregate with relaxed atomic adds, which are commutative, so
//! counter snapshots are **deterministic for any thread count**. Timing
//! metrics (histograms, gauges) are wall-clock-dependent; by convention
//! their names end in `_us` so consumers (the golden-manifest test) can
//! mask them.
//!
//! Metric names form a workspace-wide contract: every name emitted in
//! non-test code must be declared in the top-level
//! `telemetry.registry.toml` with its instrument kind and owning crate.
//! The `telemetry-contract` rule in `pipedepth-analysis` fails the lint
//! gate on drift in either direction; regenerate a registry draft with
//! `cargo run -p pipedepth-analysis -- metrics`.
//!
//! # Examples
//!
//! ```
//! use pipedepth_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! telemetry.counter("sim.instructions").add(1_000);
//! {
//!     let _span = telemetry.span("phase.sweep_us");
//!     // ... timed work ...
//! }
//! let snapshot = telemetry.snapshot();
//! # #[cfg(feature = "capture")]
//! assert_eq!(snapshot.counter("sim.instructions"), 1_000);
//! ```

pub mod json;

#[cfg(feature = "capture")]
mod capture;
#[cfg(feature = "capture")]
pub use capture::{Counter, Gauge, Histogram, Span, Telemetry};

#[cfg(not(feature = "capture"))]
mod noop;
#[cfg(not(feature = "capture"))]
pub use noop::{Counter, Gauge, Histogram, Span, Telemetry};

/// A wall-clock stopwatch for phase and cell timing.
///
/// This is the workspace's only sanctioned clock outside the `repro`
/// driver: the determinism lint (`pipedepth-analysis`) forbids
/// `std::time::Instant` in every other crate, so all wall-time
/// measurements are routed through here and named `*_us` where they land
/// in metrics — which lets artifact comparisons mask them uniformly.
/// Unlike the metric types, the stopwatch is available even with the
/// `capture` feature off; readings feed gauges and histograms that
/// compile to no-ops in that configuration.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch(std::time::Instant::now())
    }

    /// Microseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_us(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e6
    }
}

/// Default bucket upper bounds, in microseconds, for span/timing
/// histograms (an implicit `+inf` bucket follows the last bound).
pub const DEFAULT_TIME_BUCKETS_US: [f64; 12] = [
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    50_000.0,
    100_000.0,
    1_000_000.0,
];

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A last-write-wins gauge.
    Gauge(f64),
    /// A fixed-bucket histogram.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The metric kind as a stable lowercase tag.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Renders the value as a single-line JSON object.
    pub fn to_json(&self) -> String {
        match self {
            MetricValue::Counter(v) => format!("{{\"type\": \"counter\", \"value\": {v}}}"),
            MetricValue::Gauge(v) => {
                format!("{{\"type\": \"gauge\", \"value\": {}}}", json::number(*v))
            }
            MetricValue::Histogram(h) => h.to_json(),
        }
    }
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds; a final `+inf` bucket is implicit.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`None` when empty).
    pub min: Option<f64>,
    /// Largest observed value (`None` when empty).
    pub max: Option<f64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) from the bucket counts:
    /// the upper bound of the bucket holding the target observation,
    /// clamped to the observed extremes. Observations landing in the
    /// implicit overflow bucket estimate as the largest observed value.
    /// `None` when the histogram is empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // The rank of the target observation, 1-based: q = 0 maps to the
        // first observation, q = 1 to the last.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let estimate = match self.bounds.get(i) {
                    Some(&bound) => bound,
                    // Overflow bucket: all we know is "above the last
                    // bound"; the observed max is the tightest estimate.
                    None => self.max?,
                };
                let lo = self.min.unwrap_or(estimate);
                let hi = self.max.unwrap_or(estimate);
                return Some(estimate.clamp(lo, hi));
            }
        }
        self.max
    }

    /// Renders the histogram as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|&b| json::number(b)).collect();
        let buckets: Vec<String> = self.buckets.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
             \"bounds\": [{}], \"buckets\": [{}]}}",
            self.count,
            json::number(self.sum),
            self.min.map_or_else(|| "null".to_string(), json::number),
            self.max.map_or_else(|| "null".to_string(), json::number),
            bounds.join(", "),
            buckets.join(", "),
        )
    }
}

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered metric name, e.g. `sim.instructions`.
    pub name: String,
    /// The metric's value.
    pub value: MetricValue,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The metrics, in ascending name order.
    pub metrics: Vec<MetricSnapshot>,
}

impl Snapshot {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// A counter's value (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// A gauge's value, when present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's state, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing was registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_value_kinds() {
        assert_eq!(MetricValue::Counter(1).kind(), "counter");
        assert_eq!(MetricValue::Gauge(0.5).kind(), "gauge");
    }

    #[test]
    fn counter_json_shape() {
        assert_eq!(
            MetricValue::Counter(7).to_json(),
            "{\"type\": \"counter\", \"value\": 7}"
        );
    }

    #[test]
    fn empty_histogram_snapshot_json_uses_null() {
        let h = HistogramSnapshot {
            bounds: vec![1.0],
            buckets: vec![0, 0],
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        };
        assert_eq!(h.mean(), 0.0);
        assert!(h.to_json().contains("\"min\": null"));
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
    }

    #[test]
    fn quantiles_estimate_from_bucket_bounds() {
        // 10 observations: 4 in (..=10], 4 in (10..=100], 2 overflow.
        let h = HistogramSnapshot {
            bounds: vec![10.0, 100.0],
            buckets: vec![4, 4, 2],
            count: 10,
            sum: 500.0,
            min: Some(2.0),
            max: Some(400.0),
        };
        assert_eq!(h.quantile(0.0), Some(10.0), "q=0 lands in the first bucket");
        assert_eq!(h.quantile(0.4), Some(10.0));
        assert_eq!(h.quantile(0.5), Some(100.0));
        assert_eq!(h.quantile(0.8), Some(100.0));
        assert_eq!(h.quantile(0.99), Some(400.0), "overflow estimates as max");
        assert_eq!(h.quantile(1.0), Some(400.0));
        assert_eq!(h.quantile(1.5), None, "out-of-range q");
        assert_eq!(h.quantile(-0.1), None);
    }

    #[test]
    fn quantile_is_clamped_to_observed_extremes() {
        // All observations in one bucket whose bound (1000) far exceeds
        // anything observed: the estimate must not exceed the max.
        let h = HistogramSnapshot {
            bounds: vec![1000.0],
            buckets: vec![5, 0],
            count: 5,
            sum: 15.0,
            min: Some(1.0),
            max: Some(5.0),
        };
        assert_eq!(h.quantile(0.5), Some(5.0));
    }

    #[test]
    fn snapshot_lookups() {
        let snap = Snapshot {
            metrics: vec![
                MetricSnapshot {
                    name: "a".into(),
                    value: MetricValue::Counter(3),
                },
                MetricSnapshot {
                    name: "b".into(),
                    value: MetricValue::Gauge(0.25),
                },
            ],
        };
        assert_eq!(snap.counter("a"), 3);
        assert_eq!(snap.counter("b"), 0, "gauge is not a counter");
        assert_eq!(snap.gauge("b"), Some(0.25));
        assert!(snap.histogram("a").is_none());
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
    }
}
