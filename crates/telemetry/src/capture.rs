//! The live (capturing) implementation behind the `capture` feature.
//!
//! A [`Telemetry`] handle is a cheap clone of an `Arc`'d registry. Metric
//! handles ([`Counter`], [`Gauge`], [`Histogram`]) are resolved once by
//! name — paying one registry lock — and record lock-free afterwards via
//! relaxed atomics.

use crate::{HistogramSnapshot, MetricSnapshot, MetricValue, Snapshot, DEFAULT_TIME_BUCKETS_US};
use std::collections::btree_map::Entry as MapEntry;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The metric store: names to live metric cells, sorted so snapshots come
/// out in deterministic name order.
#[derive(Debug, Default)]
struct Registry {
    metrics: Mutex<BTreeMap<String, Entry>>,
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

/// Handle to the metrics registry (or a no-op stand-in).
///
/// Cloning is cheap and every clone records into the same registry.
/// [`Telemetry::disabled`] (also the `Default`) has no registry at all:
/// recording through it is a single branch.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A fresh, empty, recording registry.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// A no-op handle: every recording call through it does nothing.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the monotonic counter `name`.
    ///
    /// If `name` is already registered as a different metric kind, the
    /// returned handle is disconnected and records nowhere.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(reg) = &self.inner else {
            return Counter(None);
        };
        let mut map = reg.metrics.lock().expect("telemetry registry lock");
        match map.entry(name.to_string()) {
            MapEntry::Occupied(e) => match e.get() {
                Entry::Counter(c) => Counter(Some(Arc::clone(c))),
                _ => Counter(None),
            },
            MapEntry::Vacant(v) => {
                let cell = Arc::new(AtomicU64::new(0));
                v.insert(Entry::Counter(Arc::clone(&cell)));
                Counter(Some(cell))
            }
        }
    }

    /// Resolves (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(reg) = &self.inner else {
            return Gauge(None);
        };
        let mut map = reg.metrics.lock().expect("telemetry registry lock");
        match map.entry(name.to_string()) {
            MapEntry::Occupied(e) => match e.get() {
                Entry::Gauge(g) => Gauge(Some(Arc::clone(g))),
                _ => Gauge(None),
            },
            MapEntry::Vacant(v) => {
                let cell = Arc::new(AtomicU64::new(0.0f64.to_bits()));
                v.insert(Entry::Gauge(Arc::clone(&cell)));
                Gauge(Some(cell))
            }
        }
    }

    /// Resolves (registering on first use) the fixed-bucket histogram
    /// `name`. The bounds are upper bucket edges, ascending; an implicit
    /// `+inf` bucket catches everything above the last bound. The bounds
    /// of the *first* registration win.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let Some(reg) = &self.inner else {
            return Histogram(None);
        };
        let mut map = reg.metrics.lock().expect("telemetry registry lock");
        match map.entry(name.to_string()) {
            MapEntry::Occupied(e) => match e.get() {
                Entry::Histogram(h) => Histogram(Some(Arc::clone(h))),
                _ => Histogram(None),
            },
            MapEntry::Vacant(v) => {
                let core = Arc::new(HistogramCore::new(bounds));
                v.insert(Entry::Histogram(Arc::clone(&core)));
                Histogram(Some(core))
            }
        }
    }

    /// Starts a scoped timer that records its elapsed time, in
    /// microseconds, into the histogram `name` when dropped. By convention
    /// span names end in `_us`.
    pub fn span(&self, name: &str) -> Span {
        if !self.is_enabled() {
            return Span { live: None };
        }
        Span {
            live: Some((
                self.histogram(name, &DEFAULT_TIME_BUCKETS_US),
                Instant::now(),
            )),
        }
    }

    /// Copies every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let Some(reg) = &self.inner else {
            return Snapshot::default();
        };
        let map = reg.metrics.lock().expect("telemetry registry lock");
        let metrics = map
            .iter()
            .map(|(name, entry)| MetricSnapshot {
                name: name.clone(),
                value: match entry {
                    Entry::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Entry::Gauge(g) => {
                        MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Entry::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        Snapshot { metrics }
    }
}

/// A monotonic counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Relaxed atomic add: commutative, so totals are
    /// deterministic for any thread interleaving.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disconnected handle).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge handle (stores an `f64`).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0 for a disconnected handle).
    pub fn value(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

#[derive(Debug)]
struct HistogramCore {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last catches values above every
    /// bound.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// `f64` bit patterns updated by CAS.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| v > b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v).to_bits())
            });
        let _ = self
            .min_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v < f64::from_bits(bits)).then(|| v.to_bits())
            });
        let _ = self
            .max_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                (v > f64::from_bits(bits)).then(|| v.to_bits())
            });
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: (count > 0).then(|| f64::from_bits(self.min_bits.load(Ordering::Relaxed))),
            max: (count > 0).then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed))),
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        if let Some(core) = &self.0 {
            core.record(v);
        }
    }
}

/// A scoped timer: created by [`Telemetry::span`], records its elapsed
/// microseconds into the named histogram when dropped.
#[derive(Debug)]
pub struct Span {
    live: Option<(Histogram, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.live.take() {
            histogram.record(start.elapsed().as_secs_f64() * 1e6);
        }
    }
}
