//! Minimal JSON rendering helpers.
//!
//! The workspace has no serialisation dependency (the build environment is
//! offline), so the manifest and metric snapshots are rendered with these
//! two primitives: string escaping and finite-number formatting.

/// Escapes a string for embedding inside a JSON string literal (without
/// the surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number. Non-finite values, which JSON cannot
/// represent, render as `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting: deterministic, and always a
        // valid JSON number.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_control_characters() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak"), "line\\nbreak");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_roundtrip() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(0.0), "0");
        assert_eq!(number(-2.25), "-2.25");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
    }
}
