//! The compiled-out implementation used when the `capture` feature is off.
//!
//! Every type is zero-sized and every method an empty inlined body, so a
//! build without `capture` carries no telemetry code at all — the
//! guarantee behind "no measurable slowdown with telemetry disabled".
//! The API mirrors [`capture`](crate) exactly; consumers never need
//! `cfg` guards.

use crate::Snapshot;

/// No-op stand-in for the recording handle (capture feature off).
#[derive(Debug, Clone, Copy, Default)]
pub struct Telemetry;

impl Telemetry {
    /// A handle (records nothing in this build).
    #[inline(always)]
    pub fn new() -> Self {
        Telemetry
    }

    /// A no-op handle.
    #[inline(always)]
    pub fn disabled() -> Self {
        Telemetry
    }

    /// Always false: nothing records in this build.
    #[inline(always)]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// A disconnected counter.
    #[inline(always)]
    pub fn counter(&self, _name: &str) -> Counter {
        Counter
    }

    /// A disconnected gauge.
    #[inline(always)]
    pub fn gauge(&self, _name: &str) -> Gauge {
        Gauge
    }

    /// A disconnected histogram.
    #[inline(always)]
    pub fn histogram(&self, _name: &str, _bounds: &[f64]) -> Histogram {
        Histogram
    }

    /// A span that times nothing.
    #[inline(always)]
    pub fn span(&self, _name: &str) -> Span {
        Span
    }

    /// Always empty.
    #[inline(always)]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

/// No-op counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Always 0.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op gauge.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always 0.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// No-op histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, _v: f64) {}
}

/// No-op span.
#[derive(Debug, Clone, Copy, Default)]
pub struct Span;
