//! Unit tests for the metrics registry: counter determinism across thread
//! interleavings, histogram bucketing, snapshot ordering, and the no-op
//! handle contract.

#![cfg(feature = "capture")]

use pipedepth_telemetry::{MetricValue, Telemetry};

#[test]
fn counters_accumulate() {
    let t = Telemetry::new();
    let c = t.counter("a.count");
    c.inc();
    c.add(9);
    assert_eq!(c.value(), 10);
    assert_eq!(t.snapshot().counter("a.count"), 10);
}

#[test]
fn counter_totals_are_deterministic_across_threads() {
    // The same additions distributed over different worker counts must
    // produce identical totals — the property the golden-manifest test
    // relies on.
    let total_with_workers = |workers: usize| -> u64 {
        let t = Telemetry::new();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let c = t.counter("work.items");
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        if i % workers as u64 == w as u64 {
                            c.add(i);
                        }
                    }
                });
            }
        });
        t.snapshot().counter("work.items")
    };
    let serial = total_with_workers(1);
    assert_eq!(serial, (0..1000).sum::<u64>());
    assert_eq!(serial, total_with_workers(4));
    assert_eq!(serial, total_with_workers(7));
}

#[test]
fn gauge_is_last_write_wins() {
    let t = Telemetry::new();
    let g = t.gauge("util");
    g.set(0.5);
    g.set(0.75);
    assert_eq!(g.value(), 0.75);
    assert_eq!(t.snapshot().gauge("util"), Some(0.75));
}

#[test]
fn histogram_buckets_deterministically() {
    let t = Telemetry::new();
    let h = t.histogram("lat", &[1.0, 10.0, 100.0]);
    for v in [0.5, 1.0, 5.0, 10.0, 99.0, 100.0, 1000.0] {
        h.record(v);
    }
    let snap = t.snapshot();
    let hs = snap.histogram("lat").expect("registered");
    // Upper bounds are inclusive: 1.0 lands in the first bucket.
    assert_eq!(hs.bounds, vec![1.0, 10.0, 100.0]);
    assert_eq!(hs.buckets, vec![2, 2, 2, 1]);
    assert_eq!(hs.count, 7);
    assert_eq!(hs.min, Some(0.5));
    assert_eq!(hs.max, Some(1000.0));
    assert!((hs.sum - 1215.5).abs() < 1e-9);
    assert!((hs.mean() - 1215.5 / 7.0).abs() < 1e-9);
}

#[test]
fn histogram_bounds_are_sorted_and_deduped() {
    let t = Telemetry::new();
    t.histogram("h", &[10.0, 1.0, 10.0, f64::NAN]).record(5.0);
    let snap = t.snapshot();
    let hs = snap.histogram("h").expect("registered");
    assert_eq!(hs.bounds, vec![1.0, 10.0]);
    assert_eq!(hs.buckets, vec![0, 1, 0]);
}

#[test]
fn snapshot_is_sorted_by_name() {
    let t = Telemetry::new();
    t.counter("z.last").inc();
    t.counter("a.first").inc();
    t.gauge("m.middle").set(1.0);
    let snap = t.snapshot();
    let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(names, ["a.first", "m.middle", "z.last"]);
}

#[test]
fn snapshots_are_repeatable() {
    let t = Telemetry::new();
    t.counter("c").add(3);
    t.histogram("h", &[1.0]).record(0.5);
    assert_eq!(t.snapshot(), t.snapshot());
}

#[test]
fn clones_share_the_registry() {
    let t = Telemetry::new();
    let u = t.clone();
    u.counter("shared").add(2);
    t.counter("shared").add(3);
    assert_eq!(t.snapshot().counter("shared"), 5);
}

#[test]
fn kind_mismatch_yields_disconnected_handles() {
    let t = Telemetry::new();
    t.counter("name").add(4);
    // Re-registering the same name as a different kind must not clobber
    // the existing metric.
    t.gauge("name").set(9.0);
    t.histogram("name", &[1.0]).record(1.0);
    let snap = t.snapshot();
    assert_eq!(snap.counter("name"), 4);
    assert_eq!(snap.len(), 1);
}

#[test]
fn span_records_into_a_histogram() {
    let t = Telemetry::new();
    {
        let _span = t.span("phase.work_us");
    }
    let snap = t.snapshot();
    let hs = snap.histogram("phase.work_us").expect("span registered");
    assert_eq!(hs.count, 1);
    assert!(hs.min.expect("one sample") >= 0.0);
}

#[test]
fn disabled_handle_records_nothing() {
    let t = Telemetry::disabled();
    assert!(!t.is_enabled());
    t.counter("c").add(5);
    t.gauge("g").set(1.0);
    t.histogram("h", &[1.0]).record(1.0);
    drop(t.span("s_us"));
    assert!(t.snapshot().is_empty());
    assert_eq!(t.counter("c").value(), 0);
}

#[test]
fn default_is_disabled() {
    assert!(!Telemetry::default().is_enabled());
}

#[test]
fn json_rendering_is_stable() {
    let t = Telemetry::new();
    t.counter("c").add(2);
    let snap = t.snapshot();
    let MetricValue::Counter(v) = snap.get("c").expect("present") else {
        panic!("counter expected");
    };
    assert_eq!(*v, 2);
    assert_eq!(
        snap.get("c").expect("present").to_json(),
        "{\"type\": \"counter\", \"value\": 2}"
    );
}
