//! The 55-workload suite of the `pipedepth` workspace.
//!
//! The paper evaluates 55 proprietary trace tapes spanning four classes:
//! traditional (legacy) database/OLTP code, SPECint 95/2000, modern
//! C++/Java applications, and floating-point applications. This crate
//! provides the synthetic equivalent: 55 deterministic
//! [`pipedepth_trace::WorkloadModel`]s — one per workload — derived from
//! per-class presets with seeded jitter, so the suite exhibits the same
//! within-class spread and between-class contrasts the paper reports.
//!
//! # Examples
//!
//! ```
//! use pipedepth_workloads::{suite, WorkloadClass};
//!
//! let all = suite();
//! assert_eq!(all.len(), 55);
//! let fp: Vec<_> = all.iter().filter(|w| w.class == WorkloadClass::FloatingPoint).collect();
//! assert_eq!(fp.len(), 10);
//! ```
pub mod class;
pub mod suite;

pub use class::WorkloadClass;
pub use suite::{representatives, suite, suite_class, Workload};
