//! The paper's four workload classes.

use std::fmt;

/// Workload classes studied in the paper (its Fig. 7 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadClass {
    /// Traditional (legacy) database and OLTP applications, written in
    /// Assembler: low ILP, branchy, large footprints.
    Legacy,
    /// SPECint 95/2000-like integer applications: regular, predictable,
    /// cache-resident.
    SpecInt,
    /// Modern C++/Java applications: indirect branches, pointer chasing.
    Modern,
    /// SPECfp-like floating-point applications: FP-dominated, streaming.
    FloatingPoint,
}

impl WorkloadClass {
    /// All classes, in the paper's presentation order.
    pub const ALL: [WorkloadClass; 4] = [
        WorkloadClass::Legacy,
        WorkloadClass::SpecInt,
        WorkloadClass::Modern,
        WorkloadClass::FloatingPoint,
    ];

    /// Number of workloads of this class in the 55-trace suite.
    pub fn suite_count(self) -> usize {
        match self {
            WorkloadClass::Legacy => 14,
            WorkloadClass::SpecInt => 16,
            WorkloadClass::Modern => 15,
            WorkloadClass::FloatingPoint => 10,
        }
    }

    /// Short tag used in workload names.
    pub fn tag(self) -> &'static str {
        match self {
            WorkloadClass::Legacy => "legacy",
            WorkloadClass::SpecInt => "specint",
            WorkloadClass::Modern => "modern",
            WorkloadClass::FloatingPoint => "fp",
        }
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadClass::Legacy => "legacy (DB/OLTP)",
            WorkloadClass::SpecInt => "SPECint",
            WorkloadClass::Modern => "modern (C++/Java)",
            WorkloadClass::FloatingPoint => "floating point",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_totals_fifty_five() {
        let total: usize = WorkloadClass::ALL.iter().map(|c| c.suite_count()).sum();
        assert_eq!(total, 55, "the paper studies 55 workloads");
    }

    #[test]
    fn tags_unique() {
        let mut tags: Vec<_> = WorkloadClass::ALL.iter().map(|c| c.tag()).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), 4);
    }
}
