//! The 55-workload suite.
//!
//! Each workload is a [`WorkloadModel`] derived from its class preset by a
//! deterministic, seeded perturbation, mimicking the spread of real
//! applications within a class. The suite is fully reproducible: the same
//! build always yields exactly the same 55 workloads.

use crate::class::WorkloadClass;
use pipedepth_trace::{BranchModel, InstructionMix, MemoryModel, WorkloadModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One workload of the suite.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Stable index within the suite (0..55).
    pub id: usize,
    /// Human-readable name, e.g. `specint-03`.
    pub name: String,
    /// Class the workload belongs to.
    pub class: WorkloadClass,
    /// The statistical model realising it.
    pub model: WorkloadModel,
    /// Seed its traces are generated from.
    pub trace_seed: u64,
}

fn jitter(rng: &mut StdRng, base: f64, rel: f64) -> f64 {
    base * (1.0 + rng.gen_range(-rel..rel))
}

fn clamp_prob(x: f64) -> f64 {
    x.clamp(0.001, 0.999)
}

fn legacy_variant(rng: &mut StdRng) -> WorkloadModel {
    let base = WorkloadModel::legacy_like();
    let mix = base.mix;
    WorkloadModel::new(
        mix,
        jitter(rng, base.mean_dep_distance, 0.25).max(1.5),
        clamp_prob(jitter(rng, base.dep_density, 0.2)),
        BranchModel::new(
            1024,
            clamp_prob(jitter(rng, base.branches.biased_fraction, 0.06)),
            clamp_prob(jitter(rng, base.branches.bias, 0.03)),
            base.branches.code_footprint,
        ),
        MemoryModel::new(
            (jitter(rng, base.memory.working_set as f64, 0.5) as u64).max(64 * 1024),
            clamp_prob(jitter(rng, base.memory.spatial_locality, 0.04)),
            8,
        )
        .with_hot_set(
            32 * 1024,
            clamp_prob(jitter(rng, base.memory.hot_probability, 0.06)),
        ),
    )
    .with_serial_fraction(rng.gen_range(0.45..0.68))
}

fn specint_variant(rng: &mut StdRng) -> WorkloadModel {
    let base = WorkloadModel::spec_int_like();
    WorkloadModel::new(
        base.mix,
        jitter(rng, base.mean_dep_distance, 0.25).max(2.0),
        clamp_prob(jitter(rng, base.dep_density, 0.25)),
        BranchModel::new(
            256,
            clamp_prob(jitter(rng, base.branches.biased_fraction, 0.02)),
            clamp_prob(jitter(rng, base.branches.bias, 0.012)),
            base.branches.code_footprint,
        ),
        MemoryModel::new(
            (jitter(rng, base.memory.working_set as f64, 0.4) as u64).max(8 * 1024),
            clamp_prob(jitter(rng, base.memory.spatial_locality, 0.04)),
            8,
        ),
    )
    .with_serial_fraction(rng.gen_range(0.0..0.08))
}

fn modern_variant(rng: &mut StdRng) -> WorkloadModel {
    let base = WorkloadModel::modern_like();
    WorkloadModel::new(
        base.mix,
        jitter(rng, base.mean_dep_distance, 0.25).max(1.8),
        clamp_prob(jitter(rng, base.dep_density, 0.2)),
        BranchModel::new(
            512,
            clamp_prob(jitter(rng, base.branches.biased_fraction, 0.04)),
            clamp_prob(jitter(rng, base.branches.bias, 0.02)),
            base.branches.code_footprint,
        ),
        MemoryModel::new(
            (jitter(rng, base.memory.working_set as f64, 0.5) as u64).max(64 * 1024),
            clamp_prob(jitter(rng, base.memory.spatial_locality, 0.04)),
            8,
        )
        .with_hot_set(
            28 * 1024,
            clamp_prob(jitter(rng, base.memory.hot_probability, 0.05)),
        ),
    )
    .with_serial_fraction(rng.gen_range(0.12..0.30))
}

fn fp_variant(rng: &mut StdRng) -> WorkloadModel {
    let base = WorkloadModel::spec_fp_like();
    // The FP fraction is the main axis spreading FP optima across the
    // paper's wide 6–16 stage range: more serialised FP work means lower α
    // and deeper optima.
    let fp = rng.gen_range(0.10..0.45);
    let fp_long = rng.gen_range(0.005..0.09);
    let scale = (1.0 - fp - fp_long) / (1.0 - 0.30 - 0.05);
    let m = InstructionMix::floating_point();
    let mix = InstructionMix::new(
        m.alu_rr * scale,
        m.alu_rx * scale,
        m.load * scale,
        m.store * scale,
        1.0 - fp - fp_long - (m.alu_rr + m.alu_rx + m.load + m.store) * scale,
        fp,
        fp_long,
    );
    WorkloadModel::new(
        mix,
        jitter(rng, base.mean_dep_distance, 0.3).max(2.0),
        clamp_prob(jitter(rng, base.dep_density, 0.2)),
        base.branches,
        MemoryModel::new(
            (jitter(rng, base.memory.working_set as f64, 0.5) as u64).max(32 * 1024),
            clamp_prob(jitter(rng, base.memory.spatial_locality, 0.015)),
            8,
        ),
    )
}

/// Builds the full, deterministic 55-workload suite.
///
/// # Examples
///
/// ```
/// use pipedepth_workloads::suite;
/// let all = suite();
/// assert_eq!(all.len(), 55);
/// assert_eq!(all, suite(), "the suite is deterministic");
/// ```
pub fn suite() -> Vec<Workload> {
    let mut out = Vec::with_capacity(55);
    let mut id = 0;
    for class in WorkloadClass::ALL {
        for k in 0..class.suite_count() {
            // Seed derived from class and index only: stable forever.
            let seed = 0x5eed_0000_u64 + (class as u64) * 1000 + k as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let model = match class {
                WorkloadClass::Legacy => legacy_variant(&mut rng),
                WorkloadClass::SpecInt => specint_variant(&mut rng),
                WorkloadClass::Modern => modern_variant(&mut rng),
                WorkloadClass::FloatingPoint => fp_variant(&mut rng),
            };
            out.push(Workload {
                id,
                name: format!("{}-{:02}", class.tag(), k),
                class,
                model,
                trace_seed: seed ^ 0xABCD_EF01,
            });
            id += 1;
        }
    }
    out
}

/// The workloads of one class.
pub fn suite_class(class: WorkloadClass) -> Vec<Workload> {
    suite().into_iter().filter(|w| w.class == class).collect()
}

/// A small representative subset (one workload per class) for quick runs,
/// examples and CI-sized tests.
pub fn representatives() -> Vec<Workload> {
    let all = suite();
    WorkloadClass::ALL
        .iter()
        .map(|&c| {
            all.iter()
                .find(|w| w.class == c)
                .expect("every class is populated")
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_five_workloads() {
        assert_eq!(suite().len(), 55);
    }

    #[test]
    fn deterministic() {
        assert_eq!(suite(), suite());
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = suite().into_iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 55);
    }

    #[test]
    fn ids_are_sequential() {
        for (i, w) in suite().iter().enumerate() {
            assert_eq!(w.id, i);
        }
    }

    #[test]
    fn class_counts_match() {
        for c in WorkloadClass::ALL {
            assert_eq!(suite_class(c).len(), c.suite_count());
        }
    }

    #[test]
    fn variants_differ_within_class() {
        let spec = suite_class(WorkloadClass::SpecInt);
        assert!(
            spec.windows(2).any(|w| w[0].model != w[1].model),
            "jitter must differentiate workloads"
        );
    }

    #[test]
    fn fp_class_has_fp_instructions() {
        for w in suite_class(WorkloadClass::FloatingPoint) {
            assert!(w.model.mix.fp > 0.1, "{}", w.name);
        }
        for w in suite_class(WorkloadClass::SpecInt) {
            assert_eq!(w.model.mix.fp, 0.0, "{}", w.name);
        }
    }

    #[test]
    fn legacy_is_most_serialised() {
        let serial_mean = |c| {
            let ws = suite_class(c);
            ws.iter().map(|w| w.model.serial_fraction).sum::<f64>() / ws.len() as f64
        };
        assert!(serial_mean(WorkloadClass::Legacy) > serial_mean(WorkloadClass::Modern));
        assert!(serial_mean(WorkloadClass::Modern) > serial_mean(WorkloadClass::SpecInt));
    }

    #[test]
    fn representatives_cover_classes() {
        let reps = representatives();
        assert_eq!(reps.len(), 4);
        for (r, c) in reps.iter().zip(WorkloadClass::ALL) {
            assert_eq!(r.class, c);
        }
    }

    #[test]
    fn mixes_are_valid() {
        // InstructionMix::new panics on invalid mixes, so construction via
        // suite() already proves validity; double-check sums anyway.
        for w in suite() {
            let sum: f64 = w.model.mix.fractions().iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}", w.name);
        }
    }
}
