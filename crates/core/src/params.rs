//! Parameter types for the power/performance pipeline-depth model.
//!
//! The paper's model is governed by three parameter groups:
//!
//! * **technology** — total logic depth `t_p` and per-stage latch overhead
//!   `t_o`, both in FO4 inverter delays ([`TechParams`]);
//! * **workload** — the superscalar utilisation `α`, the hazard fraction
//!   `γ`, and the hazard rate `N_H/N_I` ([`WorkloadParams`]);
//! * **power** — per-latch dynamic and leakage power, latches per stage,
//!   the latch-growth exponent `β`, and the clock-gating mode
//!   ([`PowerParams`], [`ClockGating`]).

use std::fmt;

/// Number of FO4 (fan-out-of-4 inverter) delays — the technology-independent
/// unit of time used throughout the paper.
///
/// # Examples
///
/// ```
/// use pipedepth_core::Fo4;
/// let cycle = Fo4::new(22.5);
/// assert_eq!(cycle.get(), 22.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fo4(f64);

impl Fo4 {
    /// Wraps a delay expressed in FO4 units.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "FO4 delay must be a finite non-negative number, got {value}"
        );
        Fo4(value)
    }

    /// The wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Fo4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} FO4", self.0)
    }
}

impl From<f64> for Fo4 {
    fn from(v: f64) -> Self {
        Fo4::new(v)
    }
}

/// Technology parameters: the total processor logic depth and the latch
/// overhead added by each pipeline boundary.
///
/// Paper defaults: `t_p = 140` FO4, `t_o = 2.5` FO4 ("chosen to represent a
/// particular technology", Section 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Total logic delay of the processor, `t_p` (FO4).
    pub logic_depth: Fo4,
    /// Latch (pipeline-register) overhead per stage, `t_o` (FO4).
    pub latch_overhead: Fo4,
}

impl TechParams {
    /// The paper's technology point: `t_p = 140`, `t_o = 2.5` FO4.
    pub fn paper() -> Self {
        TechParams {
            logic_depth: Fo4::new(140.0),
            latch_overhead: Fo4::new(2.5),
        }
    }

    /// Creates technology parameters from raw FO4 numbers.
    ///
    /// # Panics
    ///
    /// Panics if `logic_depth` is not strictly positive (a processor with no
    /// logic cannot be pipelined) or `latch_overhead` is not positive.
    pub fn new(logic_depth: f64, latch_overhead: f64) -> Self {
        assert!(logic_depth > 0.0, "logic depth must be positive");
        assert!(latch_overhead > 0.0, "latch overhead must be positive");
        TechParams {
            logic_depth: Fo4::new(logic_depth),
            latch_overhead: Fo4::new(latch_overhead),
        }
    }

    /// Cycle time at pipeline depth `p`: `t_s = t_o + t_p / p` (FO4).
    ///
    /// This is the paper's "FO4 per stage including latch overhead" design
    /// point; e.g. the headline 7-stage optimum is `2.5 + 140/7 = 22.5` FO4.
    pub fn cycle_time(&self, depth: f64) -> f64 {
        assert!(depth > 0.0, "pipeline depth must be positive");
        self.latch_overhead.get() + self.logic_depth.get() / depth
    }

    /// Clock frequency at depth `p` in 1/FO4: `f_s = 1 / t_s`.
    pub fn frequency(&self, depth: f64) -> f64 {
        1.0 / self.cycle_time(depth)
    }

    /// The pipeline depth whose cycle time equals `fo4_per_stage`:
    /// `p = t_p / (t_s − t_o)`.
    ///
    /// Returns `None` when `fo4_per_stage ≤ t_o` (no finite depth reaches it).
    pub fn depth_for_cycle_time(&self, fo4_per_stage: f64) -> Option<f64> {
        let logic = fo4_per_stage - self.latch_overhead.get();
        (logic > 0.0).then(|| self.logic_depth.get() / logic)
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Workload parameters extracted from a single simulation run (or measured
/// on real hardware): everything the performance model of Eq. 1 needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Average degree of superscalar processing, `α` (instructions that
    /// issue together on unstalled cycles).
    pub alpha: f64,
    /// Weighted average fraction of the pipeline stalled by a hazard, `γ`.
    pub gamma: f64,
    /// Hazards per instruction, `N_H / N_I`.
    pub hazard_rate: f64,
}

impl WorkloadParams {
    /// Creates workload parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha ≥ 1` (at least scalar issue), `gamma ∈ (0, 1]`
    /// and `hazard_rate > 0` — a hazard-free workload has no interior
    /// optimum and the model's Eq. 2 diverges.
    pub fn new(alpha: f64, gamma: f64, hazard_rate: f64) -> Self {
        assert!(alpha >= 1.0, "superscalar degree must be at least 1");
        assert!(
            gamma > 0.0 && gamma <= 1.0,
            "hazard pipeline fraction must be in (0, 1]"
        );
        assert!(hazard_rate > 0.0, "hazard rate must be positive");
        WorkloadParams {
            alpha,
            gamma,
            hazard_rate,
        }
    }

    /// A typical workload: the product `α·γ·N_H/N_I ≈ 0.108` puts the
    /// performance-only optimum near the paper's 22–23 stages for the
    /// default technology.
    pub fn typical() -> Self {
        WorkloadParams::new(2.0, 0.30, 0.18)
    }

    /// The product `α·γ·N_H/N_I` that controls the performance-only optimum.
    pub fn hazard_product(&self) -> f64 {
        self.alpha * self.gamma * self.hazard_rate
    }
}

impl Default for WorkloadParams {
    fn default() -> Self {
        Self::typical()
    }
}

/// Clock-gating mode of the power model (Eq. 3 and Section 2's discussion).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ClockGating {
    /// No gating: every latch switches every cycle (`f_cg = 1`).
    #[default]
    None,
    /// Partial gating: a fixed fraction of latches switch each cycle
    /// (`f_cg` constant in `(0, 1)`).
    Partial(f64),
    /// Complete fine-grained gating: latches switch only with work, so
    /// `f_cg·f_s → κ·(T/N_I)⁻¹` — effective switching is proportional to
    /// performance. `kappa` is the per-instruction switching constant.
    Complete {
        /// Proportionality constant `κ` (dimensionless switching activity
        /// per instruction).
        kappa: f64,
    },
}

impl ClockGating {
    /// Convenience constructor for [`ClockGating::Complete`] with `κ = 1`.
    pub fn complete() -> Self {
        ClockGating::Complete { kappa: 1.0 }
    }
}

/// Power-model parameters (the paper's Eq. 3).
///
/// `P_d` and `P_l` are *per-latch* powers; total latch count is
/// `N_L · p^β`. Note the units: `P_d` multiplies a frequency (1/FO4), so it
/// is an energy per switch, while `P_l` is a power. Only their ratio and the
/// overall scale matter to the optimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Dynamic (switching) energy per latch per clock, `P_d`.
    pub dynamic: f64,
    /// Leakage power per latch, `P_l`.
    pub leakage: f64,
    /// Latches per pipeline stage at depth 1, `N_L`.
    pub latches_per_stage: f64,
    /// Latch-growth exponent `β`: total latches scale as `p^β`. The paper
    /// uses 1.1 for the whole processor and observes 1.3 for individual
    /// units; the theory-vs-simulation comparisons use 1.3.
    pub latch_growth: f64,
    /// Clock-gating mode.
    pub gating: ClockGating,
}

impl PowerParams {
    /// The paper's default power point: `β = 1.3`, no gating, and leakage
    /// set to 15% of total power at the 10-stage reference depth of the
    /// default technology.
    pub fn paper() -> Self {
        Self::with_leakage_fraction(0.15, &TechParams::paper(), 10.0)
    }

    /// Builds power parameters with `P_d = 1` and `P_l` chosen so leakage
    /// accounts for `fraction` of total (non-gated) power at reference depth
    /// `ref_depth`:
    ///
    /// `P_l / (f_s(p_ref)·P_d + P_l) = fraction`.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction ∈ [0, 1)` and `ref_depth > 0`.
    pub fn with_leakage_fraction(fraction: f64, tech: &TechParams, ref_depth: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "leakage fraction must be in [0, 1)"
        );
        assert!(ref_depth > 0.0, "reference depth must be positive");
        let dynamic = 1.0;
        let f_ref = tech.frequency(ref_depth);
        let leakage = fraction / (1.0 - fraction) * f_ref * dynamic;
        PowerParams {
            dynamic,
            leakage,
            latches_per_stage: 1.0,
            latch_growth: 1.3,
            gating: ClockGating::None,
        }
    }

    /// Returns a copy with a different latch-growth exponent `β`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is not positive.
    pub fn with_latch_growth(mut self, beta: f64) -> Self {
        assert!(beta > 0.0, "latch growth exponent must be positive");
        self.latch_growth = beta;
        self
    }

    /// Returns a copy with the given gating mode.
    pub fn with_gating(mut self, gating: ClockGating) -> Self {
        if let ClockGating::Partial(f) = gating {
            assert!(
                f > 0.0 && f <= 1.0,
                "partial gating factor must be in (0, 1]"
            );
        }
        if let ClockGating::Complete { kappa } = gating {
            assert!(kappa > 0.0, "gating kappa must be positive");
        }
        self.gating = gating;
        self
    }

    /// Total latch count at depth `p`: `N_L · p^β`.
    pub fn latch_count(&self, depth: f64) -> f64 {
        assert!(depth > 0.0, "pipeline depth must be positive");
        self.latches_per_stage * depth.powf(self.latch_growth)
    }

    /// The leakage fraction of non-gated power at depth `p` for technology
    /// `tech` (useful to report what a parameter set means).
    pub fn leakage_fraction_at(&self, tech: &TechParams, depth: f64) -> f64 {
        let dyn_p = tech.frequency(depth) * self.dynamic;
        self.leakage / (dyn_p + self.leakage)
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// The exponent `m` of the power/performance metric `BIPS^m / W` (Eq. 4).
///
/// `m = 1, 2, 3` are the metrics debated in the literature; `m → ∞`
/// corresponds to performance-only optimisation.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct MetricExponent(f64);

impl MetricExponent {
    /// `BIPS/W` (energy per instruction).
    pub const BIPS_PER_WATT: MetricExponent = MetricExponent(1.0);
    /// `BIPS²/W` (energy–delay product).
    pub const BIPS2_PER_WATT: MetricExponent = MetricExponent(2.0);
    /// `BIPS³/W` (energy–delay² product, the paper's headline metric).
    pub const BIPS3_PER_WATT: MetricExponent = MetricExponent(3.0);

    /// Creates an arbitrary metric exponent.
    ///
    /// # Panics
    ///
    /// Panics unless `m > 0`.
    pub fn new(m: f64) -> Self {
        assert!(m > 0.0 && m.is_finite(), "metric exponent must be positive");
        MetricExponent(m)
    }

    /// The wrapped exponent.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for MetricExponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 1.0 {
            write!(f, "BIPS/W")
        } else {
            write!(f, "BIPS^{}/W", self.0)
        }
    }
}

impl From<f64> for MetricExponent {
    fn from(m: f64) -> Self {
        MetricExponent::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cycle_times_match_headline_numbers() {
        let tech = TechParams::paper();
        // 7 stages → 22.5 FO4; 22 stages → ≈8.86 FO4; 8 stages → 20 FO4.
        assert!((tech.cycle_time(7.0) - 22.5).abs() < 1e-12);
        assert!((tech.cycle_time(8.0) - 20.0).abs() < 1e-12);
        assert!((tech.cycle_time(22.0) - 8.863).abs() < 1e-2);
    }

    #[test]
    fn depth_for_cycle_time_inverts_cycle_time() {
        let tech = TechParams::paper();
        for p in [2.0, 7.0, 14.5, 25.0] {
            let ts = tech.cycle_time(p);
            let back = tech.depth_for_cycle_time(ts).unwrap();
            assert!((back - p).abs() < 1e-9);
        }
    }

    #[test]
    fn depth_for_unreachable_cycle_time() {
        let tech = TechParams::paper();
        assert!(tech.depth_for_cycle_time(2.5).is_none());
        assert!(tech.depth_for_cycle_time(1.0).is_none());
    }

    #[test]
    fn frequency_is_reciprocal_of_cycle_time() {
        let tech = TechParams::paper();
        assert!((tech.frequency(10.0) * tech.cycle_time(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        let _ = TechParams::paper().cycle_time(0.0);
    }

    #[test]
    fn workload_hazard_product() {
        let w = WorkloadParams::new(2.0, 0.3, 0.18);
        assert!((w.hazard_product() - 0.108).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "superscalar degree")]
    fn alpha_below_one_rejected() {
        let _ = WorkloadParams::new(0.5, 0.3, 0.1);
    }

    #[test]
    #[should_panic(expected = "hazard rate")]
    fn zero_hazard_rate_rejected() {
        let _ = WorkloadParams::new(2.0, 0.3, 0.0);
    }

    #[test]
    fn leakage_fraction_roundtrips() {
        let tech = TechParams::paper();
        for frac in [0.0, 0.15, 0.5, 0.9] {
            let pw = PowerParams::with_leakage_fraction(frac, &tech, 10.0);
            let measured = pw.leakage_fraction_at(&tech, 10.0);
            assert!(
                (measured - frac).abs() < 1e-12,
                "fraction {frac} measured {measured}"
            );
        }
    }

    #[test]
    fn latch_count_grows_superlinearly() {
        let pw = PowerParams::paper();
        let n10 = pw.latch_count(10.0);
        let n20 = pw.latch_count(20.0);
        // β = 1.3 ⇒ doubling depth multiplies latches by 2^1.3 ≈ 2.46.
        assert!((n20 / n10 - 2f64.powf(1.3)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "leakage fraction")]
    fn full_leakage_rejected() {
        let _ = PowerParams::with_leakage_fraction(1.0, &TechParams::paper(), 10.0);
    }

    #[test]
    fn gating_builder_validates() {
        let pw = PowerParams::paper().with_gating(ClockGating::Partial(0.5));
        assert_eq!(pw.gating, ClockGating::Partial(0.5));
    }

    #[test]
    #[should_panic(expected = "partial gating factor")]
    fn bad_partial_gating_rejected() {
        let _ = PowerParams::paper().with_gating(ClockGating::Partial(0.0));
    }

    #[test]
    fn metric_exponent_display() {
        assert_eq!(MetricExponent::BIPS_PER_WATT.to_string(), "BIPS/W");
        assert_eq!(MetricExponent::BIPS3_PER_WATT.to_string(), "BIPS^3/W");
    }

    #[test]
    #[should_panic(expected = "metric exponent")]
    fn nonpositive_metric_exponent_rejected() {
        let _ = MetricExponent::new(0.0);
    }

    #[test]
    fn fo4_display() {
        assert_eq!(Fo4::new(22.5).to_string(), "22.5 FO4");
    }
}
