//! The performance model (the paper's Eq. 1, from Hartstein & Puzak,
//! ISCA 2002) and its performance-only optimum (Eq. 2).
//!
//! Time per instruction at pipeline depth `p` decomposes into a busy term —
//! instructions flowing through at the superscalar rate `α` — and a
//! not-busy term — each hazard stalling a fraction `γ` of the pipeline:
//!
//! ```text
//! T/N_I = (1/α)(t_o + t_p/p)  +  γ·(N_H/N_I)·(t_o·p + t_p)
//! ```

use crate::params::{TechParams, WorkloadParams};

/// The analytic performance model: Eq. 1 of the paper.
///
/// # Examples
///
/// ```
/// use pipedepth_core::{PerfModel, TechParams, WorkloadParams};
///
/// let perf = PerfModel::new(TechParams::paper(), WorkloadParams::typical());
/// let p_opt = perf.optimum_depth();
/// // The paper's performance-only optimum is ≈22 stages.
/// assert!(p_opt > 20.0 && p_opt < 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    tech: TechParams,
    workload: WorkloadParams,
}

impl PerfModel {
    /// Creates the model from technology and workload parameters.
    pub fn new(tech: TechParams, workload: WorkloadParams) -> Self {
        PerfModel { tech, workload }
    }

    /// Technology parameters.
    pub fn tech(&self) -> &TechParams {
        &self.tech
    }

    /// Workload parameters.
    pub fn workload(&self) -> &WorkloadParams {
        &self.workload
    }

    /// Time per instruction `τ(p) = T/N_I` in FO4 (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not positive.
    pub fn time_per_instruction(&self, depth: f64) -> f64 {
        self.busy_time(depth) + self.hazard_time(depth)
    }

    /// The busy (pipeline-flowing) component `(1/α)(t_o + t_p/p)`.
    pub fn busy_time(&self, depth: f64) -> f64 {
        self.tech.cycle_time(depth) / self.workload.alpha
    }

    /// The hazard-stall component `γ·(N_H/N_I)·(t_o·p + t_p)`.
    ///
    /// A hazard drains a `γ` fraction of the pipeline; the full pipeline
    /// drain time is `p` cycles of `t_s = t_o + t_p/p`, i.e. `t_o·p + t_p`.
    pub fn hazard_time(&self, depth: f64) -> f64 {
        assert!(depth > 0.0, "pipeline depth must be positive");
        let w = &self.workload;
        let t = &self.tech;
        w.gamma * w.hazard_rate * (t.latch_overhead.get() * depth + t.logic_depth.get())
    }

    /// Performance in instructions per FO4: `(T/N_I)⁻¹`, proportional to
    /// BIPS within the technology's absolute time scale.
    pub fn throughput(&self, depth: f64) -> f64 {
        1.0 / self.time_per_instruction(depth)
    }

    /// Derivative `dτ/dp = (αγ·(N_H/N_I)·t_o·p² − t_p) / (α·p²)`.
    pub fn time_derivative(&self, depth: f64) -> f64 {
        assert!(depth > 0.0, "pipeline depth must be positive");
        let w = &self.workload;
        let t = &self.tech;
        let num = w.hazard_product() * t.latch_overhead.get() * depth * depth - t.logic_depth.get();
        num / (w.alpha * depth * depth)
    }

    /// The performance-only optimum (Eq. 2):
    /// `p_opt = sqrt( t_p / (α·γ·(N_H/N_I)·t_o) )`.
    pub fn optimum_depth(&self) -> f64 {
        let t = &self.tech;
        (t.logic_depth.get() / (self.workload.hazard_product() * t.latch_overhead.get())).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerfModel {
        PerfModel::new(TechParams::paper(), WorkloadParams::typical())
    }

    #[test]
    fn optimum_matches_closed_form() {
        let m = model();
        let p = m.optimum_depth();
        // Derivative vanishes at the optimum.
        assert!(m.time_derivative(p).abs() < 1e-12);
        // And is negative (improving) below, positive above.
        assert!(m.time_derivative(p * 0.5) < 0.0);
        assert!(m.time_derivative(p * 2.0) > 0.0);
    }

    #[test]
    fn typical_workload_optimum_near_paper() {
        // The paper's performance-only optimum is 22 stages (8.9 FO4).
        let p = model().optimum_depth();
        assert!(p > 20.0 && p < 25.0, "got {p}");
    }

    #[test]
    fn time_is_sum_of_components() {
        let m = model();
        for p in [2.0, 7.0, 22.0] {
            let total = m.time_per_instruction(p);
            assert!((total - m.busy_time(p) - m.hazard_time(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn throughput_peaks_at_optimum() {
        let m = model();
        let p = m.optimum_depth();
        let at = m.throughput(p);
        assert!(at > m.throughput(p - 5.0));
        assert!(at > m.throughput(p + 5.0));
    }

    #[test]
    fn more_hazards_shift_optimum_shallower() {
        let base = model().optimum_depth();
        let hazy = PerfModel::new(TechParams::paper(), WorkloadParams::new(2.0, 0.30, 0.36))
            .optimum_depth();
        assert!(hazy < base);
    }

    #[test]
    fn more_superscalar_shifts_optimum_shallower() {
        let narrow = PerfModel::new(TechParams::paper(), WorkloadParams::new(1.0, 0.30, 0.18));
        let wide = PerfModel::new(TechParams::paper(), WorkloadParams::new(4.0, 0.30, 0.18));
        assert!(wide.optimum_depth() < narrow.optimum_depth());
    }

    #[test]
    fn larger_logic_ratio_means_deeper_pipelines() {
        // As t_p/t_o increases there is more opportunity for pipelining.
        let small = PerfModel::new(TechParams::new(70.0, 2.5), WorkloadParams::typical());
        let large = PerfModel::new(TechParams::new(280.0, 2.5), WorkloadParams::typical());
        assert!(large.optimum_depth() > small.optimum_depth());
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let m = model();
        for p in [3.0, 8.0, 15.0, 24.0] {
            let h = 1e-6;
            let fd = (m.time_per_instruction(p + h) - m.time_per_instruction(p - h)) / (2.0 * h);
            let an = m.time_derivative(p);
            assert!(
                (fd - an).abs() < 1e-6 * an.abs().max(1.0),
                "at {p}: {fd} vs {an}"
            );
        }
    }

    #[test]
    fn hazard_time_scales_with_depth() {
        let m = model();
        // Hazard drain time grows linearly in p.
        let d1 = m.hazard_time(10.0) - m.hazard_time(5.0);
        let d2 = m.hazard_time(15.0) - m.hazard_time(10.0);
        assert!((d1 - d2).abs() < 1e-12);
    }
}
