//! The power-budget design strategy.
//!
//! The paper's introduction contrasts two strategies: optimise a combined
//! metric (the paper's subject, [`crate::optimum`]), or "design for the
//! best possible performance, subject to the constraint that the power be
//! just below some maximum value". This module implements the second
//! strategy on the same model, plus the power–performance frontier that
//! connects the two views.

use crate::metric::PipelineModel;
use crate::optimum::DEPTH_RANGE;
use pipedepth_math::roots::bisect;

/// One design point of the power–performance frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierPoint {
    /// Pipeline depth.
    pub depth: f64,
    /// Throughput (instructions per FO4, ∝ BIPS).
    pub throughput: f64,
    /// Total power.
    pub power: f64,
}

/// The outcome of a power-capped design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetedDesign {
    /// The best-performance depth whose power meets the budget.
    Feasible(FrontierPoint),
    /// Even the shallowest design exceeds the budget.
    Infeasible {
        /// Power of the cheapest (1-stage) design.
        minimum_power: f64,
    },
    /// The budget is loose enough that the unconstrained performance
    /// optimum fits inside it.
    Unconstrained(FrontierPoint),
}

impl BudgetedDesign {
    /// The selected depth, if any design is feasible.
    pub fn depth(&self) -> Option<f64> {
        match self {
            BudgetedDesign::Feasible(p) | BudgetedDesign::Unconstrained(p) => Some(p.depth),
            BudgetedDesign::Infeasible { .. } => None,
        }
    }
}

fn point_at(model: &PipelineModel, depth: f64) -> FrontierPoint {
    FrontierPoint {
        depth,
        throughput: model.perf().throughput(depth),
        power: model.power().total_power(depth),
    }
}

/// Chooses the best-performance pipeline depth whose total power does not
/// exceed `budget` — the paper's alternative design strategy.
///
/// Performance is unimodal in depth (peaking at the Eq. 2 optimum) and
/// power increases monotonically, so the constrained optimum is either the
/// unconstrained performance peak (if affordable) or the deepest design on
/// the rising branch whose power equals the budget.
///
/// # Panics
///
/// Panics unless `budget > 0`.
///
/// # Examples
///
/// ```
/// use pipedepth_core::{power_capped_design, BudgetedDesign, PipelineModel,
///                      PowerParams, TechParams, WorkloadParams};
///
/// let model = PipelineModel::new(
///     TechParams::paper(),
///     WorkloadParams::typical(),
///     PowerParams::paper(),
/// );
/// // A tight budget forces a shallower-than-optimal pipeline.
/// let perf_opt = model.perf().optimum_depth();
/// let tight = model.power().total_power(perf_opt) * 0.5;
/// match power_capped_design(&model, tight) {
///     BudgetedDesign::Feasible(p) => assert!(p.depth < perf_opt),
///     other => panic!("expected a feasible capped design, got {other:?}"),
/// }
/// ```
pub fn power_capped_design(model: &PipelineModel, budget: f64) -> BudgetedDesign {
    assert!(budget > 0.0, "power budget must be positive");
    let (lo, hi) = DEPTH_RANGE;
    let perf_opt = model.perf().optimum_depth().clamp(lo, hi);

    if model.power().total_power(perf_opt) <= budget {
        return BudgetedDesign::Unconstrained(point_at(model, perf_opt));
    }
    if model.power().total_power(lo) > budget {
        return BudgetedDesign::Infeasible {
            minimum_power: model.power().total_power(lo),
        };
    }
    // Power is monotone increasing in depth: find where it meets the budget
    // on [lo, perf_opt]. The early returns above bracket the crossing; if
    // floating-point noise defeats the bracket anyway, `lo` is a depth known
    // to satisfy the budget.
    let crossing = bisect(
        |p| model.power().total_power(p) - budget,
        lo,
        perf_opt,
        1e-10,
    )
    .unwrap_or(lo);
    BudgetedDesign::Feasible(point_at(model, crossing))
}

/// Samples the power–performance frontier over the searchable depth range:
/// `(depth, throughput, power)` for `steps + 1` equally spaced depths.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn frontier(model: &PipelineModel, steps: usize) -> Vec<FrontierPoint> {
    assert!(steps > 0, "need at least one step");
    let (lo, hi) = DEPTH_RANGE;
    (0..=steps)
        .map(|i| point_at(model, lo + (hi - lo) * i as f64 / steps as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ClockGating, PowerParams, TechParams, WorkloadParams};

    fn model() -> PipelineModel {
        PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper(),
        )
    }

    #[test]
    fn loose_budget_is_unconstrained() {
        let m = model();
        let perf_opt = m.perf().optimum_depth();
        let loose = m.power().total_power(perf_opt) * 10.0;
        match power_capped_design(&m, loose) {
            BudgetedDesign::Unconstrained(p) => {
                assert!((p.depth - perf_opt).abs() < 1e-9);
            }
            other => panic!("expected unconstrained, got {other:?}"),
        }
    }

    #[test]
    fn tight_budget_hits_the_cap_exactly() {
        let m = model();
        let perf_opt = m.perf().optimum_depth();
        let budget = m.power().total_power(perf_opt) * 0.6;
        match power_capped_design(&m, budget) {
            BudgetedDesign::Feasible(p) => {
                assert!(p.depth < perf_opt);
                assert!((p.power - budget).abs() < 1e-6 * budget);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn impossible_budget_reported() {
        let m = model();
        let tiny = m.power().total_power(1.0) * 0.5;
        assert!(matches!(
            power_capped_design(&m, tiny),
            BudgetedDesign::Infeasible { .. }
        ));
    }

    #[test]
    fn tighter_budgets_mean_shallower_designs() {
        let m = model();
        let perf_opt = m.perf().optimum_depth();
        let base = m.power().total_power(perf_opt);
        let mut last = f64::INFINITY;
        for frac in [0.9, 0.7, 0.5, 0.3] {
            let d = power_capped_design(&m, base * frac)
                .depth()
                .expect("feasible");
            assert!(d < last, "budget {frac}: {d} should shrink");
            last = d;
        }
    }

    #[test]
    fn frontier_power_is_monotone() {
        let pts = frontier(&model(), 64);
        for w in pts.windows(2) {
            assert!(w[1].power > w[0].power);
        }
    }

    #[test]
    fn frontier_throughput_peaks_at_perf_optimum() {
        let m = model();
        let pts = frontier(&m, 256);
        let best = pts
            .iter()
            .max_by(|a, b| a.throughput.partial_cmp(&b.throughput).unwrap())
            .unwrap();
        assert!((best.depth - m.perf().optimum_depth()).abs() < 0.5);
    }

    #[test]
    fn gated_machine_affords_deeper_designs() {
        // Under the same budget, the gated machine (cheaper dynamic power)
        // can run a deeper pipeline.
        let ungated = model();
        let gated = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::Complete { kappa: 0.3 }),
        );
        let budget = ungated.power().total_power(8.0);
        let d_u = power_capped_design(&ungated, budget).depth().unwrap();
        let d_g = power_capped_design(&gated, budget).depth().unwrap();
        assert!(d_g > d_u, "gated {d_g} vs ungated {d_u}");
    }
}
