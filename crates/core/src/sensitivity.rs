//! Sensitivity sweeps over the model's governing parameters.
//!
//! These drive the paper's Figs. 8 (leakage) and 9 (latch growth) and the
//! metric-exponent comparison of Fig. 5, all from the analytic theory with
//! no simulation required — the property the paper emphasises in its
//! Discussion section.

use crate::metric::PipelineModel;
use crate::optimum::{numeric_optimum, Optimum};
use crate::params::{ClockGating, MetricExponent, PowerParams, TechParams, WorkloadParams};

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub parameter: f64,
    /// The optimum for that value.
    pub optimum: Optimum,
}

/// Base configuration from which sweeps perturb a single parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Technology parameters.
    pub tech: TechParams,
    /// Workload parameters.
    pub workload: WorkloadParams,
    /// Power parameters (the swept field is overridden per point).
    pub power: PowerParams,
    /// Metric exponent.
    pub m: MetricExponent,
    /// Reference depth at which leakage fractions are defined.
    pub ref_depth: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            tech: TechParams::paper(),
            workload: WorkloadParams::typical(),
            power: PowerParams::paper(),
            m: MetricExponent::BIPS3_PER_WATT,
            ref_depth: 10.0,
        }
    }
}

impl SweepConfig {
    /// Builds the model for a given power-parameter override.
    fn model_with_power(&self, power: PowerParams) -> PipelineModel {
        PipelineModel::new(self.tech, self.workload, power)
    }
}

/// Sweeps the leakage fraction (of total power at the reference depth),
/// holding dynamic power constant — the paper's Fig. 8 experiment.
///
/// Returns one [`SweepPoint`] per requested fraction.
///
/// # Panics
///
/// Panics if any fraction is outside `[0, 1)`.
pub fn leakage_sweep(config: &SweepConfig, fractions: &[f64]) -> Vec<SweepPoint> {
    fractions
        .iter()
        .map(|&frac| {
            let power = PowerParams::with_leakage_fraction(frac, &config.tech, config.ref_depth)
                .with_latch_growth(config.power.latch_growth)
                .with_gating(config.power.gating);
            let model = config.model_with_power(power);
            SweepPoint {
                parameter: frac,
                optimum: numeric_optimum(&model, config.m),
            }
        })
        .collect()
}

/// Sweeps the latch-growth exponent β — the paper's Fig. 9 experiment.
pub fn latch_growth_sweep(config: &SweepConfig, betas: &[f64]) -> Vec<SweepPoint> {
    betas
        .iter()
        .map(|&beta| {
            let power = config.power.with_latch_growth(beta);
            let model = config.model_with_power(power);
            SweepPoint {
                parameter: beta,
                optimum: numeric_optimum(&model, config.m),
            }
        })
        .collect()
}

/// Sweeps the metric exponent m (Fig. 5's BIPS, BIPS³/W, BIPS²/W, BIPS/W
/// comparison generalised to arbitrary m).
pub fn metric_exponent_sweep(config: &SweepConfig, ms: &[f64]) -> Vec<SweepPoint> {
    ms.iter()
        .map(|&m| {
            let model = config.model_with_power(config.power);
            SweepPoint {
                parameter: m,
                optimum: numeric_optimum(&model, MetricExponent::new(m)),
            }
        })
        .collect()
}

/// Compares gated vs ungated optima at otherwise identical parameters.
///
/// Returns `(ungated, gated)`.
pub fn gating_comparison(config: &SweepConfig, kappa: f64) -> (Optimum, Optimum) {
    let ungated = config.model_with_power(config.power.with_gating(ClockGating::None));
    let gated = config.model_with_power(config.power.with_gating(ClockGating::Complete { kappa }));
    (
        numeric_optimum(&ungated, config.m),
        numeric_optimum(&gated, config.m),
    )
}

/// A two-dimensional sweep over the metric exponent m and the latch-growth
/// exponent β — the two exponents the paper's Summary singles out as
/// having "the greatest impact on the optimum design point".
#[derive(Debug, Clone, PartialEq)]
pub struct ExponentGrid {
    /// Metric exponents (rows).
    pub ms: Vec<f64>,
    /// Latch-growth exponents (columns).
    pub betas: Vec<f64>,
    /// `optima[i][j]` is the optimum depth at `(ms[i], betas[j])`, or
    /// `None` when the design is unpipelined/boundary.
    pub optima: Vec<Vec<Option<f64>>>,
}

impl ExponentGrid {
    /// The optimum at a grid cell.
    pub fn at(&self, m_idx: usize, beta_idx: usize) -> Option<f64> {
        self.optima[m_idx][beta_idx]
    }
}

/// Sweeps the (m, β) plane, the joint version of Fig. 9 and the metric
/// comparison: optimum depth at every combination.
pub fn exponent_beta_grid(config: &SweepConfig, ms: &[f64], betas: &[f64]) -> ExponentGrid {
    let optima = ms
        .iter()
        .map(|&m| {
            betas
                .iter()
                .map(|&beta| {
                    let power = config.power.with_latch_growth(beta);
                    let model = config.model_with_power(power);
                    numeric_optimum(&model, MetricExponent::new(m)).depth()
                })
                .collect()
        })
        .collect();
    ExponentGrid {
        ms: ms.to_vec(),
        betas: betas.to_vec(),
        optima,
    }
}

/// Normalised metric curves for a family of leakage fractions, as plotted in
/// Fig. 8 (each curve scaled to its own maximum).
pub fn normalized_leakage_curves(
    config: &SweepConfig,
    fractions: &[f64],
    depths: &[f64],
) -> Vec<(f64, Vec<f64>)> {
    fractions
        .iter()
        .map(|&frac| {
            let power = PowerParams::with_leakage_fraction(frac, &config.tech, config.ref_depth)
                .with_latch_growth(config.power.latch_growth)
                .with_gating(config.power.gating);
            let model = config.model_with_power(power);
            let raw: Vec<f64> = depths.iter().map(|&p| model.metric(p, config.m)).collect();
            let max = raw.iter().cloned().fold(f64::MIN, f64::max);
            (frac, raw.into_iter().map(|v| v / max).collect())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gated_config() -> SweepConfig {
        SweepConfig {
            power: PowerParams::paper().with_gating(ClockGating::complete()),
            ..SweepConfig::default()
        }
    }

    #[test]
    fn leakage_deepens_optimum() {
        // The paper's Fig. 8: growing leakage pushes the optimum deeper.
        let pts = leakage_sweep(&gated_config(), &[0.0, 0.15, 0.3, 0.5, 0.9]);
        let depths: Vec<f64> = pts.iter().filter_map(|p| p.optimum.depth()).collect();
        assert_eq!(
            depths.len(),
            5,
            "every leakage point should have an optimum"
        );
        for w in depths.windows(2) {
            assert!(w[1] > w[0], "optimum must deepen with leakage: {depths:?}");
        }
    }

    #[test]
    fn leakage_doubles_optimum_from_0_to_90() {
        // Fig. 8: 7 stages → 14 stages, i.e. roughly doubling.
        let pts = leakage_sweep(&gated_config(), &[0.0, 0.9]);
        let d0 = pts[0].optimum.depth().unwrap();
        let d90 = pts[1].optimum.depth().unwrap();
        let ratio = d90 / d0;
        assert!(
            ratio > 1.5 && ratio < 3.0,
            "expected ≈2x deepening, got {d0} → {d90}"
        );
    }

    #[test]
    fn beta_shrinks_optimum() {
        // Fig. 9: larger latch-growth exponent ⇒ shallower optimum.
        let pts = latch_growth_sweep(&gated_config(), &[1.0, 1.1, 1.3, 1.5, 1.8]);
        let depths: Vec<f64> = pts
            .iter()
            .map(|p| p.optimum.depth().unwrap_or(1.0))
            .collect();
        for w in depths.windows(2) {
            assert!(w[1] < w[0], "optimum must shrink with β: {depths:?}");
        }
    }

    #[test]
    fn huge_beta_unpipelines() {
        let pts = latch_growth_sweep(&gated_config(), &[4.0]);
        assert!(pts[0].optimum.depth().is_none_or(|d| d < 2.0));
    }

    #[test]
    fn metric_exponent_sweep_is_monotone() {
        let pts = metric_exponent_sweep(&gated_config(), &[3.0, 4.0, 6.0, 10.0]);
        let depths: Vec<f64> = pts
            .iter()
            .map(|p| p.optimum.depth().unwrap_or(1.0))
            .collect();
        for w in depths.windows(2) {
            assert!(w[1] >= w[0], "deeper with larger m: {depths:?}");
        }
    }

    #[test]
    fn grid_monotone_along_both_axes() {
        let grid = exponent_beta_grid(&gated_config(), &[2.5, 3.0, 4.0, 6.0], &[1.0, 1.3, 1.6]);
        // Deeper with m (down columns), shallower with β (across rows).
        for j in 0..grid.betas.len() {
            let col: Vec<f64> = (0..grid.ms.len())
                .map(|i| grid.at(i, j).unwrap_or(1.0))
                .collect();
            for w in col.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "column {j}: {col:?}");
            }
        }
        for i in 0..grid.ms.len() {
            let row: Vec<f64> = (0..grid.betas.len())
                .map(|j| grid.at(i, j).unwrap_or(1.0))
                .collect();
            for w in row.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "row {i}: {row:?}");
            }
        }
    }

    #[test]
    fn grid_shape_matches_inputs() {
        let grid = exponent_beta_grid(&gated_config(), &[3.0, 4.0], &[1.1, 1.3, 1.5]);
        assert_eq!(grid.optima.len(), 2);
        assert_eq!(grid.optima[0].len(), 3);
    }

    #[test]
    fn gating_comparison_direction() {
        let (ungated, gated) = gating_comparison(&SweepConfig::default(), 1.0);
        let du = ungated.depth().unwrap_or(1.0);
        let dg = gated.depth().unwrap_or(1.0);
        assert!(dg > du, "gated {dg} vs ungated {du}");
    }

    #[test]
    fn normalized_curves_peak_at_one() {
        let depths: Vec<f64> = (1..=28).map(|p| p as f64).collect();
        let curves = normalized_leakage_curves(&gated_config(), &[0.0, 0.5], &depths);
        for (_, ys) in curves {
            let max = ys.iter().cloned().fold(f64::MIN, f64::max);
            assert!((max - 1.0).abs() < 1e-12);
        }
    }
}
