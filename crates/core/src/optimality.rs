//! The optimality condition `d Metric/dp = 0` in analytic form.
//!
//! For the non-gated (and partially gated) power model the condition is a
//! polynomial in `p`. With `u = t_o·p + t_p`, `K = α·γ·N_H/N_I` and
//! `D = f_cg·P_d`, clearing denominators of
//! `m·τ'/τ + β/p + D·t_p/(u·(D·p + P_l·u)) = 0` yields the exact **cubic**
//!
//! ```text
//! E(p) = m(K·t_o·p² − t_p)(D·p + P_l·u)
//!      + β·u(1 + K·p)(D·p + P_l·u)
//!      + D·t_p·p(1 + K·p)
//! ```
//!
//! Multiplying by `u` gives the paper's **quartic** (its Eq. 5), which
//! carries the extra exact root `p = −t_p/t_o` (Eq. 6a). The root
//! `p = −t_p·P_l/(D + t_o·P_l)` (Eq. 6b) is approximate, exactly as the
//! paper observes. Dividing the cubic by `(D·p + P_l·u)` and linearising the
//! remainder produces the paper's quadratic approximation (Eq. 7).

use crate::metric::PipelineModel;
use crate::params::{ClockGating, MetricExponent};
use pipedepth_math::roots::solve_quadratic;
use pipedepth_math::Polynomial;

/// Raw ingredients of the optimality polynomials, extracted from a model.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ingredients {
    m: f64,
    beta: f64,
    t_p: f64,
    t_o: f64,
    /// `K = α·γ·N_H/N_I`.
    k: f64,
    alpha: f64,
    /// Effective dynamic factor `D = f_cg·P_d`.
    d: f64,
    p_l: f64,
}

fn ingredients(model: &PipelineModel, m: MetricExponent) -> Option<Ingredients> {
    let d = match model.power_params().gating {
        ClockGating::None => model.power_params().dynamic,
        ClockGating::Partial(f_cg) => f_cg * model.power_params().dynamic,
        // Complete gating makes the power model non-polynomial in p; the
        // polynomial machinery does not apply.
        ClockGating::Complete { .. } => return None,
    };
    let tech = model.tech();
    let w = model.workload();
    Some(Ingredients {
        m: m.get(),
        beta: model.power_params().latch_growth,
        t_p: tech.logic_depth.get(),
        t_o: tech.latch_overhead.get(),
        k: w.hazard_product(),
        alpha: w.alpha,
        d,
        p_l: model.power_params().leakage,
    })
}

/// The exact cubic optimality polynomial `E(p)` for a non- or partially
/// gated model.
///
/// Its positive real root is the optimum pipeline depth. Returns `None` for
/// [`ClockGating::Complete`], whose optimality condition is not polynomial —
/// use [`metric_slope`] with a numeric root finder instead.
pub fn optimality_cubic(model: &PipelineModel, m: MetricExponent) -> Option<Polynomial> {
    let ing = ingredients(model, m)?;
    let u = Polynomial::new(vec![ing.t_p, ing.t_o]);
    // D·p + P_l·u
    let denom = Polynomial::new(vec![0.0, ing.d]) + u.scale(ing.p_l);
    // 1 + K·p
    let one_kp = Polynomial::new(vec![1.0, ing.k]);
    // K·t_o·p² − t_p
    let tau_num = Polynomial::new(vec![-ing.t_p, 0.0, ing.k * ing.t_o]);

    let term1 = (&tau_num * &denom).scale(ing.m);
    let term2 = (&(&u * &one_kp) * &denom).scale(ing.beta);
    let term3 = (Polynomial::new(vec![0.0, ing.d * ing.t_p]) * one_kp.clone()).scale(1.0);
    Some(term1 + term2 + term3)
}

/// The paper's quartic form of the optimality condition (its Eq. 5):
/// the exact cubic multiplied by `u = t_o·p + t_p`.
///
/// Plotting this polynomial reproduces the paper's Fig. 1: four real zero
/// crossings, a single positive one, plus the stationary spurious roots of
/// Eqs. 6a/6b. Returns `None` for complete clock gating.
pub fn paper_quartic(model: &PipelineModel, m: MetricExponent) -> Option<Polynomial> {
    let cubic = optimality_cubic(model, m)?;
    let t = model.tech();
    let u = Polynomial::new(vec![t.logic_depth.get(), t.latch_overhead.get()]);
    Some(cubic * u)
}

/// The paper's Eq. 6a: the exact spurious root `p = −t_p/t_o` introduced by
/// forming the quartic.
pub fn spurious_root_6a(model: &PipelineModel) -> f64 {
    let t = model.tech();
    -t.logic_depth.get() / t.latch_overhead.get()
}

/// The paper's Eq. 6b: the approximate spurious root
/// `p = −t_p·P_l/(D + t_o·P_l)`.
///
/// Returns `None` for complete clock gating (no polynomial form) or when
/// both `D` and `P_l` are zero.
pub fn spurious_root_6b(model: &PipelineModel, m: MetricExponent) -> Option<f64> {
    let ing = ingredients(model, m)?;
    let denom = ing.d + ing.t_o * ing.p_l;
    (denom != 0.0).then(|| -ing.t_p * ing.p_l / denom)
}

/// Coefficients `(B2, B1, B0)` of the paper's quadratic approximation
/// (Eq. 7/8), in the α-scaled form the paper prints:
///
/// ```text
/// B2 = (β + m)·γ·h·t_o
/// B1 = β·γ·h·t_p + β·t_o/α + D·γ·h·t_p/(D + t_o·P_l)
/// B0 = (β − m)·t_p/α + D·t_p/(α(D + t_o·P_l))
/// ```
///
/// Returns `None` for complete clock gating.
pub fn quadratic_coefficients(model: &PipelineModel, m: MetricExponent) -> Option<(f64, f64, f64)> {
    let ing = ingredients(model, m)?;
    let gh = ing.k / ing.alpha; // γ·h
    let mix = ing.d / (ing.d + ing.t_o * ing.p_l);
    let b2 = (ing.beta + ing.m) * gh * ing.t_o;
    let b1 = ing.beta * gh * ing.t_p + ing.beta * ing.t_o / ing.alpha + mix * gh * ing.t_p;
    let b0 = (ing.beta - ing.m) * ing.t_p / ing.alpha + mix * ing.t_p / ing.alpha;
    Some((b2, b1, b0))
}

/// The positive root of the paper's quadratic approximation — the
/// closed-form optimum pipeline depth of Eq. 7.
///
/// Returns `None` when no positive root exists (the optimum is an
/// unpipelined, single-stage design — the paper's BIPS/W and BIPS²/W cases)
/// or for complete clock gating.
pub fn quadratic_optimum(model: &PipelineModel, m: MetricExponent) -> Option<f64> {
    let (b2, b1, b0) = quadratic_coefficients(model, m)?;
    solve_quadratic(b2, b1, b0).into_iter().find(|&r| r > 0.0)
}

/// The positive root of the exact cubic optimality polynomial.
///
/// Returns `None` when every real root is non-positive (no pipelined
/// optimum) or for complete clock gating.
pub fn cubic_optimum(model: &PipelineModel, m: MetricExponent) -> Option<f64> {
    let cubic = optimality_cubic(model, m)?;
    pipedepth_math::roots::real_roots(&cubic)
        .into_iter()
        .find(|&r| r > 0.0)
}

/// Analytic slope of the log-metric, `d ln Metric / dp`, valid for **all**
/// gating modes (the complete-gating case is handled with the paper's
/// `f_cg·f_s → κ/τ` substitution).
///
/// The optimum depth is the positive zero of this function; it is positive
/// below the optimum and negative above it. A non-positive `depth` is
/// outside the model's domain and yields `NAN`.
pub fn metric_slope(model: &PipelineModel, depth: f64, m: MetricExponent) -> f64 {
    if depth.is_nan() || depth <= 0.0 {
        return f64::NAN;
    }
    let perf = model.perf();
    let tau = perf.time_per_instruction(depth);
    let dtau = perf.time_derivative(depth);
    let beta = model.power_params().latch_growth;
    let p_d = model.power_params().dynamic;
    let p_l = model.power_params().leakage;
    let tech = model.tech();

    let power_slope = match model.power_params().gating {
        ClockGating::None | ClockGating::Partial(_) => {
            let f_cg = match model.power_params().gating {
                ClockGating::Partial(f) => f,
                _ => 1.0,
            };
            let u = tech.latch_overhead.get() * depth + tech.logic_depth.get();
            let f_s = depth / u;
            let df_s = tech.logic_depth.get() / (u * u);
            beta / depth + f_cg * p_d * df_s / (f_cg * f_s * p_d + p_l)
        }
        ClockGating::Complete { kappa } => {
            let w = kappa * p_d / (kappa * p_d + tau * p_l);
            beta / depth - w * dtau / tau
        }
    };
    -(m.get() * dtau / tau + power_slope)
}

/// Closed-form approximation of the **gated** optimum: freezing the
/// leakage weight `w = κP_d/(κP_d + τ·P_l)` at a reference depth turns the
/// gated condition `(m − w)·τ'/τ + β/p = 0` into a quadratic
///
/// ```text
/// [(m − w)·K·t_o + β·K·t_o]·p² + β·(t_o + K·t_p)·p + (β − (m − w))·t_p = 0
/// ```
///
/// (with `K = α·γ·N_H/N_I`). This extends the paper's Eq. 7 to the
/// clock-gated case it only treats numerically. Returns `None` when the
/// model is not completely gated, `ref_depth` is not positive, or no
/// positive root exists.
pub fn gated_quadratic_optimum(
    model: &PipelineModel,
    m: MetricExponent,
    ref_depth: f64,
) -> Option<f64> {
    let ClockGating::Complete { kappa } = model.power_params().gating else {
        return None;
    };
    if ref_depth.is_nan() || ref_depth <= 0.0 {
        return None;
    }
    let tech = model.tech();
    let w_params = model.workload();
    let k = w_params.hazard_product();
    let t_p = tech.logic_depth.get();
    let t_o = tech.latch_overhead.get();
    let beta = model.power_params().latch_growth;
    let p_d = model.power_params().dynamic;
    let p_l = model.power_params().leakage;
    let tau_ref = model.perf().time_per_instruction(ref_depth);
    let w = kappa * p_d / (kappa * p_d + tau_ref * p_l);
    let m_eff = m.get() - w;

    let a = (m_eff + beta) * k * t_o;
    let b = beta * (t_o + k * t_p);
    let c = (beta - m_eff) * t_p;
    solve_quadratic(a, b, c).into_iter().find(|&r| r > 0.0)
}

/// Condition for a pipelined optimum to be *possible* at all: the paper's
/// `m > β` requirement, read off the quartic's constant term
/// `A₀ ∝ (β − m)·t_p³·P_l`.
pub fn necessary_condition(model: &PipelineModel, m: MetricExponent) -> bool {
    m.get() > model.power_params().latch_growth
}

/// The stronger condition that applies when leakage is negligible: with
/// `P_l = 0` the exact cubic's constant term is `(β + 1 − m)·t_p·D`, so a
/// pipelined optimum additionally requires `m > β + 1`.
///
/// (The paper quotes `m > 2β` from its A₃ coefficient; for the β ≈ 1.1–1.3
/// regime both thresholds exclude BIPS/W and BIPS²/W and admit BIPS³/W.)
pub fn zero_leakage_condition(model: &PipelineModel, m: MetricExponent) -> bool {
    m.get() > model.power_params().latch_growth + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PowerParams, TechParams, WorkloadParams};
    use pipedepth_math::roots::real_roots;

    const M3: MetricExponent = MetricExponent::BIPS3_PER_WATT;

    fn model() -> PipelineModel {
        PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper(),
        )
    }

    /// Numerical slope of the log-metric via central differences.
    fn numeric_slope(model: &PipelineModel, p: f64, m: MetricExponent) -> f64 {
        let h = 1e-6 * p;
        (model.log_metric(p + h, m) - model.log_metric(p - h, m)) / (2.0 * h)
    }

    #[test]
    fn cubic_is_degree_three() {
        let c = optimality_cubic(&model(), M3).unwrap();
        assert_eq!(c.degree(), Some(3));
    }

    #[test]
    fn quartic_is_degree_four() {
        let q = paper_quartic(&model(), M3).unwrap();
        assert_eq!(q.degree(), Some(4));
    }

    #[test]
    fn cubic_root_matches_metric_slope_zero() {
        let m = model();
        let p = cubic_optimum(&m, M3).expect("m=3, β=1.3 has an optimum");
        assert!(metric_slope(&m, p, M3).abs() < 1e-9, "slope at root");
    }

    #[test]
    fn metric_slope_matches_numeric_derivative_ungated() {
        let m = model();
        for p in [2.0, 5.0, 9.0, 18.0] {
            let an = metric_slope(&m, p, M3);
            let nm = numeric_slope(&m, p, M3);
            assert!(
                (an - nm).abs() < 1e-5 * an.abs().max(1.0),
                "at {p}: {an} vs {nm}"
            );
        }
    }

    #[test]
    fn metric_slope_matches_numeric_derivative_gated() {
        let m = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::complete()),
        );
        for p in [2.0, 5.0, 9.0, 18.0] {
            let an = metric_slope(&m, p, M3);
            let nm = numeric_slope(&m, p, M3);
            assert!(
                (an - nm).abs() < 1e-5 * an.abs().max(1.0),
                "at {p}: {an} vs {nm}"
            );
        }
    }

    #[test]
    fn quartic_carries_spurious_root_6a() {
        let m = model();
        let q = paper_quartic(&m, M3).unwrap();
        let r6a = spurious_root_6a(&m);
        assert!(
            (r6a + 56.0).abs() < 1e-12,
            "paper technology: −t_p/t_o = −56"
        );
        let scale: f64 = q.coeffs().iter().fold(1.0f64, |a, c| a.max(c.abs()));
        assert!(
            q.eval(r6a).abs() < 1e-6 * scale * r6a.abs().powi(4),
            "quartic({r6a}) = {}",
            q.eval(r6a)
        );
    }

    #[test]
    fn root_6b_is_small_and_negative() {
        let m = model();
        let r = spurious_root_6b(&m, M3).unwrap();
        assert!(r < 0.0 && r > -2.0, "Eq. 6b root near −0.5, got {r}");
    }

    /// Distance from Eq. 6b's prediction to the nearest true quartic root,
    /// relative to the root's magnitude.
    fn root_6b_relative_error(m: &PipelineModel) -> f64 {
        let q = paper_quartic(m, M3).unwrap();
        let roots = real_roots(&q);
        let r6b = spurious_root_6b(m, M3).unwrap();
        let closest = roots
            .iter()
            .cloned()
            .min_by(|a, b| (a - r6b).abs().partial_cmp(&(b - r6b).abs()).unwrap())
            .unwrap();
        (closest - r6b).abs() / closest.abs().max(0.5)
    }

    #[test]
    fn root_6b_tracks_a_true_root() {
        // Eq. 6b is an approximate root; the paper quotes <5% deviation for
        // its parameters. The approximation degrades when P_l·t_p is
        // comparable to D·p (our default 15%-leakage point), so we assert a
        // loose bound here and tightness at low leakage below.
        assert!(root_6b_relative_error(&model()) < 0.6);
    }

    #[test]
    fn negative_roots_are_stationary_under_workload_changes() {
        // The paper's observation from replotting Fig. 1: the two roots
        // described by Eqs. 6a/6b "are largely stationary and not dependent
        // on the other parameters". Vary the workload by 2× and check the
        // negative roots barely move while the positive root moves a lot.
        let base = model();
        let varied = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::new(3.0, 0.45, 0.25),
            PowerParams::paper(),
        );
        let rb = real_roots(&paper_quartic(&base, M3).unwrap());
        let rv = real_roots(&paper_quartic(&varied, M3).unwrap());
        assert_eq!(rb.len(), 4);
        assert_eq!(rv.len(), 4);
        // Most negative root (Eq. 6a) is pinned at −t_p/t_o exactly.
        assert!((rb[0] - rv[0]).abs() < 1e-6);
        // Small negative root (near Eq. 6b) moves by far less than the
        // positive optimum does.
        let small_b = rb
            .iter()
            .cloned()
            .filter(|&r| r < 0.0)
            .fold(f64::MIN, f64::max);
        let small_v = rv
            .iter()
            .cloned()
            .filter(|&r| r < 0.0)
            .fold(f64::MIN, f64::max);
        let pos_b = rb[3];
        let pos_v = rv[3];
        let neg_shift = (small_b - small_v).abs();
        let pos_shift = (pos_b - pos_v).abs();
        assert!(
            neg_shift < 0.3 * pos_shift,
            "negative root shift {neg_shift} vs positive {pos_shift}"
        );
    }

    #[test]
    fn quartic_has_four_real_roots_one_positive() {
        // The paper's Fig. 1: all four roots real, exactly one positive.
        let q = paper_quartic(&model(), M3).unwrap();
        let roots = real_roots(&q);
        assert_eq!(roots.len(), 4, "roots: {roots:?}");
        let positive: Vec<_> = roots.iter().filter(|&&r| r > 0.0).collect();
        assert_eq!(positive.len(), 1, "roots: {roots:?}");
    }

    #[test]
    fn quadratic_underestimates_but_tracks_cubic() {
        // Eq. 7 drops the P_l·t_p part of the (D·p + P_l·u) factor, which
        // biases the root shallow; at our default (shallow-optimum) point
        // the bias is tens of percent. It must still give the right order.
        let m = model();
        let exact = cubic_optimum(&m, M3).unwrap();
        let approx = quadratic_optimum(&m, M3).unwrap();
        assert!(approx <= exact, "dropping a positive term biases shallow");
        assert!(
            (exact - approx).abs() < 0.45 * exact,
            "exact {exact} vs quadratic {approx}"
        );
    }

    #[test]
    fn quadratic_tightens_for_deep_optima() {
        // In the paper's regime (optimum ≈ 5–9 stages, so D·p ≫ P_l·t_p)
        // the quadratic is accurate to a few percent.
        let m = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::new(1.2, 0.2, 0.12),
            PowerParams::with_leakage_fraction(0.03, &TechParams::paper(), 10.0),
        );
        let exact = cubic_optimum(&m, M3).unwrap();
        let approx = quadratic_optimum(&m, M3).unwrap();
        assert!(
            exact > 4.0,
            "this config should have a deep optimum, got {exact}"
        );
        assert!(
            (exact - approx).abs() < 0.10 * exact,
            "exact {exact} vs quadratic {approx}"
        );
    }

    #[test]
    fn no_optimum_for_bips_per_watt() {
        let m = model();
        assert!(quadratic_optimum(&m, MetricExponent::BIPS_PER_WATT).is_none());
        assert!(cubic_optimum(&m, MetricExponent::BIPS_PER_WATT).is_none());
    }

    #[test]
    fn no_optimum_for_bips2_per_watt_with_paper_params() {
        // "the particular parameters have moved this optimum point below 1"
        let m = model();
        let q = quadratic_optimum(&m, MetricExponent::BIPS2_PER_WATT);
        assert!(q.is_none() || q.unwrap() < 1.5, "got {q:?}");
    }

    #[test]
    fn conditions_track_m_and_beta() {
        let m = model();
        assert!(necessary_condition(&m, M3));
        assert!(!necessary_condition(&m, MetricExponent::BIPS_PER_WATT));
        assert!(zero_leakage_condition(&m, M3));
        assert!(!zero_leakage_condition(&m, MetricExponent::BIPS2_PER_WATT));
    }

    #[test]
    fn beta_above_m_kills_optimum() {
        // β > 2 pushes even BIPS³/W to an unpipelined optimum once β ≥ m
        // (Fig. 9's discussion: "if β becomes larger than 2, the theory
        // points to the optimum as a single stage design").
        let m = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_latch_growth(3.2),
        );
        assert!(cubic_optimum(&m, M3).is_none());
    }

    #[test]
    fn gated_quadratic_tracks_numeric_optimum() {
        use crate::optimum::numeric_optimum;
        let gated = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::Complete { kappa: 0.3 }),
        );
        let numeric = numeric_optimum(&gated, M3).depth().unwrap();
        // Evaluate the frozen-w quadratic at the numeric optimum itself —
        // the self-consistent reference point.
        let approx = gated_quadratic_optimum(&gated, M3, numeric).unwrap();
        assert!(
            (approx - numeric).abs() < 0.15 * numeric,
            "quadratic {approx} vs numeric {numeric}"
        );
    }

    #[test]
    fn gated_quadratic_requires_complete_gating() {
        assert!(gated_quadratic_optimum(&model(), M3, 8.0).is_none());
    }

    #[test]
    fn gated_quadratic_deepens_with_leakage() {
        // More leakage shrinks w, raising m_eff toward m: deeper optimum —
        // the closed-form restatement of Fig. 8.
        let at = |leak: f64| {
            let power = PowerParams::with_leakage_fraction(leak, &TechParams::paper(), 10.0)
                .with_gating(ClockGating::Complete { kappa: 0.3 });
            let m = PipelineModel::new(TechParams::paper(), WorkloadParams::typical(), power);
            gated_quadratic_optimum(&m, M3, 8.0).unwrap()
        };
        assert!(at(0.5) > at(0.15));
        assert!(at(0.15) > at(0.02));
    }

    #[test]
    fn complete_gating_has_no_polynomial_form() {
        let gated = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::complete()),
        );
        assert!(optimality_cubic(&gated, M3).is_none());
        assert!(paper_quartic(&gated, M3).is_none());
        assert!(quadratic_optimum(&gated, M3).is_none());
    }

    #[test]
    fn partial_gating_scales_into_polynomial() {
        let part = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::Partial(0.4)),
        );
        let p_part = cubic_optimum(&part, M3).unwrap();
        let p_full = cubic_optimum(&model(), M3).unwrap();
        // Less switching power ⇒ deeper optimum.
        assert!(p_part > p_full, "{p_part} vs {p_full}");
    }

    #[test]
    fn slope_positive_below_negative_above_optimum() {
        let m = model();
        let p_opt = cubic_optimum(&m, M3).unwrap();
        assert!(metric_slope(&m, p_opt * 0.5, M3) > 0.0);
        assert!(metric_slope(&m, p_opt * 2.0, M3) < 0.0);
    }
}
