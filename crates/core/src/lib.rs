//! Analytic power/performance pipeline-depth model — the primary
//! contribution of A. Hartstein and T. R. Puzak, *Optimum Power/Performance
//! Pipeline Depth*, MICRO-36, 2003.
//!
//! The model answers: **how deep should a microprocessor pipeline be when
//! the design is optimised for `BIPS^m/W`?** It combines
//!
//! * the performance model of Hartstein & Puzak (ISCA 2002) — time per
//!   instruction `τ(p) = (1/α)(t_o + t_p/p) + γ·(N_H/N_I)(t_o·p + t_p)` —
//!   implemented in [`perf::PerfModel`];
//! * the latch-centric power model of Srinivasan et al. (MICRO 2002) —
//!   `P_T(p) = (f_cg·f_s·P_d + P_l)·N_L·p^β` — implemented in
//!   [`power::PowerModel`];
//! * the family of metrics `Metric_m = (τ^m·P_T)⁻¹ ∝ BIPS^m/W` —
//!   implemented in [`metric::PipelineModel`].
//!
//! The optimality condition `d Metric/dp = 0` is available in closed form
//! ([`optimality`]) and the optimum itself through three cross-checked
//! routes ([`optimum`]). Parameter sweeps over leakage, latch growth and the
//! metric exponent ([`sensitivity`]) reproduce the paper's Figs. 8 and 9.
//!
//! # Quickstart
//!
//! ```
//! use pipedepth_core::{
//!     report, ClockGating, MetricExponent, PipelineModel, PowerParams,
//!     TechParams, WorkloadParams,
//! };
//!
//! // The paper's technology (t_p = 140 FO4, t_o = 2.5 FO4), a typical
//! // workload, complete clock gating, 15% leakage.
//! let model = PipelineModel::new(
//!     TechParams::paper(),
//!     WorkloadParams::typical(),
//!     PowerParams::paper().with_gating(ClockGating::complete()),
//! );
//! let r = report(&model, MetricExponent::BIPS3_PER_WATT);
//!
//! // Power-aware optimum is much shallower than the ≈22-stage
//! // performance-only optimum.
//! let depth = r.numeric.depth().expect("BIPS³/W has a pipelined optimum");
//! assert!(depth < r.perf_only);
//! ```
//!
//! # Key findings encoded (and tested) here
//!
//! * BIPS/W never has a pipelined optimum; BIPS²/W does not for typical
//!   parameters (`m > β` necessary, `m > β + 1` with negligible leakage).
//! * Growing **dynamic** power importance shortens the optimum pipeline.
//! * **Clock gating** pushes the optimum deeper.
//! * Growing **leakage** also pushes the optimum deeper (Fig. 8).
//! * The optimum is highly sensitive to the latch-growth exponent β
//!   (Fig. 9); β ≥ m removes the pipelined optimum entirely.

/// Power-budgeted design selection and the power–performance frontier.
pub mod budget;
/// The metric-exponent crossover where a pipelined optimum appears.
pub mod crossover;
/// Energy-per-instruction and energy-delay-product views of the model.
pub mod energy;
/// The crate-level error surface (`Error`, `EvalError`).
pub mod error;
/// Backend-agnostic cell evaluation (the analytic backend lives here).
pub mod eval;
/// The combined `BIPS^m/W` metric over the perf and power models.
pub mod metric;
/// The closed-form optimality condition `d Metric/dp = 0`.
pub mod optimality;
/// The optimum depth via quadratic, cubic and numeric routes.
pub mod optimum;
/// Technology, workload, power and metric parameters.
pub mod params;
/// The ISCA 2002 performance model `τ(p)`.
pub mod perf;
/// The latch-centric power model `P_T(p)`.
pub mod power;
/// Leakage, latch-growth and metric-exponent sensitivity sweeps.
pub mod sensitivity;

/// Power-capped design selection (paper §6 extensions).
pub use budget::{frontier, power_capped_design, BudgetedDesign, FrontierPoint};
/// The smallest metric exponent with a pipelined optimum.
pub use crossover::{crossover_exponent, Crossover};
/// Energy-oriented re-parameterisations of the metric family.
pub use energy::{energy_delay_product, energy_per_instruction, minimize_energy_delay};
/// The workspace-level error surface: configuration rejections and
/// evaluation failures behind one `#[non_exhaustive]` enum.
pub use error::{Error, EvalError};
/// Backend-agnostic evaluation: the trait, its request/result rows, the
/// shared result cache, and the closed-form backend.
pub use eval::{
    AnalyticModel, CacheStats, CellSpec, EvalCache, EvalOutcome, Evaluator, ShardedCache,
    TieredCache, WorkloadProfile,
};
/// The top-level model combining performance, power and the metric.
pub use metric::PipelineModel;
/// The optimality condition: coefficients, roots and special cases.
pub use optimality::{
    cubic_optimum, gated_quadratic_optimum, metric_slope, necessary_condition, optimality_cubic,
    paper_quartic, quadratic_coefficients, quadratic_optimum, spurious_root_6a, spurious_root_6b,
    zero_leakage_condition,
};
/// The optimum depth through three cross-checked routes, plus the
/// combined report.
pub use optimum::{
    analytic_optimum, closed_form_optimum, numeric_optimum, report, Optimum, OptimumReport,
    DEPTH_RANGE,
};
/// The model's input parameter types.
pub use params::{ClockGating, Fo4, MetricExponent, PowerParams, TechParams, WorkloadParams};
/// The time-per-instruction performance model.
pub use perf::PerfModel;
/// The total-power model.
pub use power::PowerModel;
/// Parameter sweeps reproducing the paper's Figs. 8 and 9.
pub use sensitivity::{
    exponent_beta_grid, gating_comparison, latch_growth_sweep, leakage_sweep,
    metric_exponent_sweep, normalized_leakage_curves, ExponentGrid, SweepConfig, SweepPoint,
};
