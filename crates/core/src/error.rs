//! The workspace-level error surface.
//!
//! Until this module existed, every layer grew its own failure channel:
//! the simulator's `ConfigError`, panics inside `Evaluator::evaluate`,
//! ad-hoc `String` errors in drivers. Long-lived consumers — the
//! `pipedepth-serve` evaluation service foremost — need one typed surface
//! they can match on and map to a wire protocol, so this module defines
//! it:
//!
//! * [`EvalError`] — why a single cell evaluation failed (invalid cell,
//!   missed deadline, backend failure). This is the error type of
//!   [`Evaluator::evaluate`](crate::eval::Evaluator::evaluate).
//! * [`Error`] — the crate-level wrapper: an evaluation failure or a
//!   configuration rejection from any layer (e.g. the simulator's
//!   `ConfigError`, carried as a boxed source so this crate stays free of
//!   a simulator dependency).
//!
//! Both enums are `#[non_exhaustive]`: new failure modes can be added
//! without breaking downstream `match`es.

use std::fmt;

/// Why one cell evaluation failed.
///
/// Returned by [`Evaluator::evaluate`](crate::eval::Evaluator::evaluate);
/// long-running services map these onto their wire protocol (the serve
/// crate renders `InvalidCell` as HTTP 400, `DeadlineExceeded` as 504 and
/// `Backend` as 500).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EvalError {
    /// The cell itself is unevaluable: unknown workload id, out-of-range
    /// depth, non-finite profile or calibration fields.
    InvalidCell {
        /// What was wrong with the cell.
        reason: String,
    },
    /// The evaluation could not finish inside its time budget.
    DeadlineExceeded {
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
    },
    /// The backend itself failed to produce an outcome.
    Backend {
        /// The backend's stable name (e.g. `"sim"`).
        backend: String,
        /// What went wrong.
        message: String,
    },
}

impl EvalError {
    /// Convenience constructor for [`EvalError::InvalidCell`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        EvalError::InvalidCell {
            reason: reason.into(),
        }
    }

    /// A short stable code for wire protocols and logs.
    pub fn code(&self) -> &'static str {
        match self {
            EvalError::InvalidCell { .. } => "invalid_cell",
            EvalError::DeadlineExceeded { .. } => "deadline_exceeded",
            EvalError::Backend { .. } => "backend_error",
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidCell { reason } => write!(f, "invalid cell: {reason}"),
            EvalError::DeadlineExceeded { budget_ms } => {
                write!(f, "evaluation exceeded its {budget_ms} ms deadline")
            }
            EvalError::Backend { backend, message } => {
                write!(f, "backend \"{backend}\" failed: {message}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// A configuration error carried by [`Error::Config`]: boxed so this crate
/// can wrap rejection types it does not depend on (the simulator's
/// `ConfigError`, a service's flag parser, …).
pub type BoxedConfigError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// The crate-level error: everything a `pipedepth` consumer can fail with.
///
/// # Examples
///
/// ```
/// use pipedepth_core::{Error, EvalError};
///
/// let err = Error::from(EvalError::invalid("depth 0"));
/// assert!(matches!(err, Error::Eval(_)));
/// assert!(err.to_string().contains("depth 0"));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A configuration was rejected before any evaluation ran. Wraps the
    /// rejecting layer's own error type (e.g. `pipedepth_sim::ConfigError`)
    /// as the source.
    Config(BoxedConfigError),
    /// A cell evaluation failed.
    Eval(EvalError),
}

impl Error {
    /// Wraps a configuration rejection from any layer.
    pub fn config(err: impl Into<BoxedConfigError>) -> Self {
        Error::Config(err.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "configuration rejected: {e}"),
            Error::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e.as_ref()),
            Error::Eval(e) => Some(e),
        }
    }
}

impl From<EvalError> for Error {
    fn from(err: EvalError) -> Self {
        Error::Eval(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_error_codes_are_stable() {
        assert_eq!(EvalError::invalid("x").code(), "invalid_cell");
        assert_eq!(
            EvalError::DeadlineExceeded { budget_ms: 5 }.code(),
            "deadline_exceeded"
        );
        assert_eq!(
            EvalError::Backend {
                backend: "sim".into(),
                message: "boom".into()
            }
            .code(),
            "backend_error"
        );
    }

    #[test]
    fn error_wraps_arbitrary_config_errors_as_source() {
        use std::error::Error as _;
        let inner = std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad depth");
        let err = Error::config(inner);
        assert!(err.to_string().contains("configuration rejected"));
        assert!(err.source().is_some(), "boxed source must be preserved");
    }

    #[test]
    fn eval_error_converts_into_crate_error() {
        let err: Error = EvalError::DeadlineExceeded { budget_ms: 250 }.into();
        assert!(err.to_string().contains("250 ms"));
    }
}
