//! Energy-metric duals of the BIPS^m/W family.
//!
//! The metrics the paper studies are reciprocals of the classic
//! energy–delay products:
//!
//! * `BIPS/W  = 1 / EPI`   (energy per instruction),
//! * `BIPS²/W ∝ 1 / EDP`   (energy–delay product),
//! * `BIPS³/W ∝ 1 / ED²P`  (energy–delay² product).
//!
//! This module exposes the energy view directly; optimising `ED^{m−1}P`
//! *minimisation* is identical to optimising `BIPS^m/W` maximisation, a
//! correspondence the tests pin down.

use crate::metric::PipelineModel;
use crate::optimum::DEPTH_RANGE;
use pipedepth_math::optimize;

/// Energy per instruction at depth `p`: `P_T(p) · τ(p)` (arbitrary units).
pub fn energy_per_instruction(model: &PipelineModel, depth: f64) -> f64 {
    model.power().total_power(depth) * model.perf().time_per_instruction(depth)
}

/// The energy–delay^k product per instruction at depth `p`:
/// `EPI · τ^k`. `k = 0` is EPI, `k = 1` EDP, `k = 2` ED²P.
///
/// # Panics
///
/// Panics if `k` is negative.
pub fn energy_delay_product(model: &PipelineModel, depth: f64, k: f64) -> f64 {
    assert!(k >= 0.0, "delay exponent must be non-negative");
    energy_per_instruction(model, depth) * model.perf().time_per_instruction(depth).powf(k)
}

/// Minimises `ED^kP` over the searchable depth range.
///
/// Returns `(depth, value)`; the depth may sit on the boundary when no
/// interior minimum exists (the EPI case).
pub fn minimize_energy_delay(model: &PipelineModel, k: f64) -> (f64, f64) {
    let (lo, hi) = DEPTH_RANGE;
    let max = optimize::maximize(|p| -energy_delay_product(model, p, k).ln(), lo, hi, 512);
    (max.x, energy_delay_product(model, max.x, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimum::numeric_optimum;
    use crate::params::{ClockGating, MetricExponent, PowerParams, TechParams, WorkloadParams};

    fn model() -> PipelineModel {
        PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::complete()),
        )
    }

    #[test]
    fn edp_is_reciprocal_of_metric() {
        let m = model();
        for depth in [3.0, 8.0, 15.0] {
            for (k, exp) in [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)] {
                let ed = energy_delay_product(&m, depth, k);
                let bips = m.metric(depth, MetricExponent::new(exp));
                assert!(
                    (ed * bips - 1.0).abs() < 1e-9,
                    "ED^{k}P × BIPS^{exp}/W must equal 1, got {}",
                    ed * bips
                );
            }
        }
    }

    #[test]
    fn minimizing_ed2p_matches_maximizing_bips3_per_watt() {
        let m = model();
        let (ed_depth, _) = minimize_energy_delay(&m, 2.0);
        let bips_depth = numeric_optimum(&m, MetricExponent::BIPS3_PER_WATT)
            .depth()
            .expect("optimum exists");
        assert!(
            (ed_depth - bips_depth).abs() < 1e-3 * bips_depth,
            "ED²P at {ed_depth} vs BIPS³/W at {bips_depth}"
        );
    }

    #[test]
    fn epi_minimised_at_the_shallowest_design() {
        // EPI is the dual of BIPS/W: no pipelined optimum.
        let (depth, _) = minimize_energy_delay(&model(), 0.0);
        assert!(depth < 1.5, "EPI minimum at {depth}");
    }

    #[test]
    fn energy_positive_and_finite() {
        let m = model();
        for depth in 1..=40 {
            let e = energy_per_instruction(&m, depth as f64);
            assert!(e.is_finite() && e > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_exponent_rejected() {
        let _ = energy_delay_product(&model(), 8.0, -1.0);
    }
}
