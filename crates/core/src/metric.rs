//! The general power/performance metric (the paper's Eq. 4):
//!
//! ```text
//! Metric_m(p) = ( (T/N_I)^m · P_T )⁻¹   ∝   BIPS^m / W
//! ```

use crate::params::{MetricExponent, PowerParams, TechParams, WorkloadParams};
use crate::perf::PerfModel;
use crate::power::PowerModel;

/// The combined power/performance model whose maximum over pipeline depth
/// the paper characterises.
///
/// # Examples
///
/// ```
/// use pipedepth_core::{MetricExponent, PipelineModel, PowerParams, TechParams, WorkloadParams};
///
/// let model = PipelineModel::new(
///     TechParams::paper(),
///     WorkloadParams::typical(),
///     PowerParams::paper(),
/// );
/// let m3 = model.metric(7.0, MetricExponent::BIPS3_PER_WATT);
/// assert!(m3 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    power: PowerModel,
}

impl PipelineModel {
    /// Assembles the full model from its three parameter groups.
    pub fn new(tech: TechParams, workload: WorkloadParams, power: PowerParams) -> Self {
        let perf = PerfModel::new(tech, workload);
        PipelineModel {
            power: PowerModel::new(perf, power),
        }
    }

    /// Builds from an existing power model.
    pub fn from_power_model(power: PowerModel) -> Self {
        PipelineModel { power }
    }

    /// The performance sub-model.
    pub fn perf(&self) -> &PerfModel {
        self.power.perf()
    }

    /// The power sub-model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// Technology parameters.
    pub fn tech(&self) -> &TechParams {
        self.power.tech()
    }

    /// Workload parameters.
    pub fn workload(&self) -> &WorkloadParams {
        self.perf().workload()
    }

    /// Power parameters.
    pub fn power_params(&self) -> &PowerParams {
        self.power.params()
    }

    /// The metric `BIPS^m/W` at depth `p` (within an arbitrary overall
    /// scale: BIPS here is instructions per FO4).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is not positive.
    pub fn metric(&self, depth: f64, m: MetricExponent) -> f64 {
        let tau = self.perf().time_per_instruction(depth);
        let p_t = self.power.total_power(depth);
        1.0 / (tau.powf(m.get()) * p_t)
    }

    /// Natural log of the metric — numerically friendlier for wide `m`.
    pub fn log_metric(&self, depth: f64, m: MetricExponent) -> f64 {
        let tau = self.perf().time_per_instruction(depth);
        let p_t = self.power.total_power(depth);
        -(m.get() * tau.ln() + p_t.ln())
    }

    /// Samples the metric over a depth range (inclusive, `steps` intervals).
    ///
    /// Returns `(depths, metric values)` ready for fitting or plotting.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, non-positive, or `steps == 0`.
    pub fn metric_curve(
        &self,
        lo: f64,
        hi: f64,
        steps: usize,
        m: MetricExponent,
    ) -> (Vec<f64>, Vec<f64>) {
        assert!(
            lo > 0.0 && hi > lo,
            "depth range must be positive and non-empty"
        );
        assert!(steps > 0, "need at least one step");
        let mut xs = Vec::with_capacity(steps + 1);
        let mut ys = Vec::with_capacity(steps + 1);
        for i in 0..=steps {
            let p = lo + (hi - lo) * i as f64 / steps as f64;
            xs.push(p);
            ys.push(self.metric(p, m));
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ClockGating;

    fn model() -> PipelineModel {
        PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper(),
        )
    }

    #[test]
    fn log_metric_consistent_with_metric() {
        let m = model();
        for p in [2.0, 7.0, 20.0] {
            let lin = m.metric(p, MetricExponent::BIPS3_PER_WATT).ln();
            let log = m.log_metric(p, MetricExponent::BIPS3_PER_WATT);
            assert!((lin - log).abs() < 1e-9);
        }
    }

    #[test]
    fn bips_per_watt_monotone_decreasing() {
        // m = 1 has no pipelined optimum: the metric only falls with depth.
        let m = model();
        let (_, ys) = m.metric_curve(1.0, 30.0, 29, MetricExponent::BIPS_PER_WATT);
        for w in ys.windows(2) {
            assert!(w[1] < w[0], "BIPS/W should fall monotonically");
        }
    }

    #[test]
    fn bips2_per_watt_no_interior_peak() {
        // m = 2 with the default parameters also optimises at a single stage.
        let m = model();
        let (_, ys) = m.metric_curve(1.0, 30.0, 29, MetricExponent::BIPS2_PER_WATT);
        let best = ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 0, "BIPS²/W should peak at the shallowest design");
    }

    #[test]
    fn bips3_gated_has_interior_peak() {
        let gated = PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::complete()),
        );
        let (xs, ys) = gated.metric_curve(1.0, 30.0, 290, MetricExponent::BIPS3_PER_WATT);
        let best = ys
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let peak = xs[best];
        assert!(peak > 2.0 && peak < 20.0, "peak at {peak}");
    }

    #[test]
    fn metric_positive_everywhere() {
        let m = model();
        for p in 1..=30 {
            assert!(m.metric(p as f64, MetricExponent::BIPS3_PER_WATT) > 0.0);
        }
    }

    #[test]
    fn curve_endpoints_match_direct_evaluation() {
        let m = model();
        let (xs, ys) = m.metric_curve(2.0, 25.0, 23, MetricExponent::BIPS3_PER_WATT);
        assert_eq!(xs.len(), 24);
        assert!((ys[0] - m.metric(2.0, MetricExponent::BIPS3_PER_WATT)).abs() < 1e-15);
        assert!((ys[23] - m.metric(25.0, MetricExponent::BIPS3_PER_WATT)).abs() < 1e-15);
    }
}
