//! Binary codecs ([`Blob`](pipedepth_store::Blob)) for the evaluation request/result rows, so
//! serving layers can persist their outcome caches through
//! `pipedepth-store`.
//!
//! The encodings carry the *full* spec — every field, floats by IEEE-754
//! bit pattern — not just its content hash: a decoded entry compares
//! equal to the original under `PartialEq`, which is what lets the warm
//! tier of a [`TieredCache`](super::TieredCache) resolve hash collisions
//! exactly and never serve a wrong answer from disk.
//!
//! Versioning lives one layer down: any change to these field lists must
//! bump the consumer's namespace `schema_version`, which invalidates old
//! snapshots wholesale (see `pipedepth_store::NamespaceSpec`).

use super::{CellSpec, EvalOutcome, WorkloadProfile};
use pipedepth_store::{Blob, ByteReader, ByteWriter, DecodeError};

impl Blob for WorkloadProfile {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.alpha)
            .put_f64(self.gamma)
            .put_f64(self.hazard_rate)
            .put_f64(self.kappa)
            .put_f64(self.memory_time_fo4);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(WorkloadProfile {
            alpha: r.take_f64()?,
            gamma: r.take_f64()?,
            hazard_rate: r.take_f64()?,
            kappa: r.take_f64()?,
            memory_time_fo4: r.take_f64()?,
        })
    }
}

impl Blob for CellSpec {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.workload);
        self.profile.encode(w);
        w.put_u32(self.depth)
            .put_u64(self.warmup)
            .put_u64(self.instructions)
            .put_f64(self.leakage_fraction)
            .put_f64(self.ref_depth)
            .put_f64(self.latch_growth);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CellSpec {
            workload: r.take_str()?.to_owned(),
            profile: WorkloadProfile::decode(r)?,
            depth: r.take_u32()?,
            warmup: r.take_u64()?,
            instructions: r.take_u64()?,
            leakage_fraction: r.take_f64()?,
            ref_depth: r.take_f64()?,
            latch_growth: r.take_f64()?,
        })
    }
}

impl Blob for EvalOutcome {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.depth)
            .put_f64(self.cpi)
            .put_f64(self.frequency)
            .put_f64(self.time_per_instruction_fo4)
            .put_f64(self.throughput)
            .put_f64(self.power_gated)
            .put_f64(self.power_ungated);
        for m in self.metric_gated.iter().chain(&self.metric_ungated) {
            w.put_f64(*m);
        }
        self.profile.encode(w);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let depth = r.take_u32()?;
        let cpi = r.take_f64()?;
        let frequency = r.take_f64()?;
        let time_per_instruction_fo4 = r.take_f64()?;
        let throughput = r.take_f64()?;
        let power_gated = r.take_f64()?;
        let power_ungated = r.take_f64()?;
        let mut metric_gated = [0.0; 3];
        for m in &mut metric_gated {
            *m = r.take_f64()?;
        }
        let mut metric_ungated = [0.0; 3];
        for m in &mut metric_ungated {
            *m = r.take_f64()?;
        }
        Ok(EvalOutcome {
            depth,
            cpi,
            frequency,
            time_per_instruction_fo4,
            throughput,
            power_gated,
            power_ungated,
            metric_gated,
            metric_ungated,
            profile: WorkloadProfile::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            alpha: 1.6,
            gamma: 0.42,
            hazard_rate: 0.11,
            kappa: 0.7,
            memory_time_fo4: 12.5,
        }
    }

    #[test]
    fn cell_spec_round_trips_and_keeps_its_key() {
        let spec = CellSpec::new("spec-int", profile(), 14);
        let decoded = CellSpec::from_record(&spec.to_record()).expect("decodes");
        assert_eq!(decoded, spec);
        assert_eq!(decoded.key(), spec.key(), "content key survives disk");
    }

    #[test]
    fn outcome_round_trips_bit_exactly() {
        let outcome = EvalOutcome {
            depth: 9,
            cpi: 1.37,
            frequency: 1.0 / 19.8,
            time_per_instruction_fo4: 27.1,
            throughput: 1.0 / 27.1,
            power_gated: 3.25,
            power_ungated: 7.5,
            metric_gated: [0.1, 0.2, 0.3],
            metric_ungated: [0.05, 0.08, 0.13],
            profile: profile(),
        };
        let decoded = EvalOutcome::from_record(&outcome.to_record()).expect("decodes");
        assert_eq!(decoded, outcome);
    }

    #[test]
    fn truncated_records_fail_cleanly() {
        let bytes = CellSpec::new("w", profile(), 2).to_record();
        for keep in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(CellSpec::from_record(&bytes[..keep]).is_err(), "{keep}");
        }
    }
}
