//! Backend-agnostic evaluation of pipeline configurations.
//!
//! The workspace has two ways to score a `(workload, depth)` cell: the
//! paper's closed-form analytic model (Eqs. 1, 3 and 4, as implemented by
//! [`PerfModel`](crate::PerfModel) / [`PipelineModel`](crate::PipelineModel))
//! and the cycle-accurate simulator in `pipedepth-sim`. Historically the
//! experiment harness was wired to the simulator only, with the analytic
//! model bolted on per-figure for overlays. This module unifies both behind
//! one interface:
//!
//! * [`CellSpec`] — one evaluation request: a workload (by stable id, plus
//!   its fitted [`WorkloadProfile`]), a pipeline depth, and the power
//!   calibration shared by every backend;
//! * [`EvalOutcome`] — the common result row: CPI, clock frequency,
//!   per-instruction time, throughput, gated/ungated power and the six
//!   `BIPS^m/W` metrics;
//! * [`Evaluator`] — the backend trait, `fn evaluate(&self, &CellSpec) ->
//!   Result<EvalOutcome, EvalError>`, plus two batched entry points
//!   backends can override: `evaluate_batch` (N arbitrary cells, one
//!   dispatch) and `evaluate_sweep` (one workload across a depth list,
//!   the hook for the simulator's annotate-once replay kernel);
//! * [`AnalyticModel`] — the closed-form backend, evaluating the paper's
//!   extended theory (`τ_total = τ(p) + t_mem`) directly from the profile;
//! * [`EvalCache`] / [`ShardedCache`] — the concurrent result cache
//!   shared by the experiment runner and the `pipedepth-serve` service
//!   (see [`cache`](crate::eval::cache)).
//!
//! The simulation backend lives in the experiments crate (the simulator
//! does not depend on this crate), implementing the same trait, so runners
//! and sweeps can be written once against `dyn Evaluator`.
//!
//! Power scale: both backends report power in the model's own per-latch
//! units (`P_d = 1`). Absolute watts are out of scope throughout the
//! workspace — every figure is scale-free or normalised — so outcomes are
//! comparable *within* a backend and, for CPI/throughput, across backends.

/// Binary codecs for persisting evaluation rows through `pipedepth-store`.
pub mod blob;
/// The sharded, backend-agnostic result cache.
pub mod cache;
/// The two-tier (memory + warm disk image) cache built on [`cache`].
pub mod tiered;

/// The cache trait and its sharded implementation (see [`cache`]).
pub use cache::{CacheStats, EvalCache, ShardedCache};
/// The tiered cache with promote-on-hit from a warm disk image.
pub use tiered::TieredCache;

/// Evaluation failures, re-exported from the crate error surface.
pub use crate::error::EvalError;
use crate::params::{ClockGating, MetricExponent, PowerParams, TechParams, WorkloadParams};
use crate::perf::PerfModel;

/// A fitted workload characterisation: everything the analytic model needs
/// to evaluate the paper's equations for one workload.
///
/// The fields mirror `ExtractedParams` in the experiments crate (which
/// fits them from a reference simulation) but carry no simulator types, so
/// profiles can be stored, shipped and evaluated without a simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Superscalar issue degree `α` (instructions per issue cycle).
    pub alpha: f64,
    /// Pipeline-drain fraction `γ` per hazard.
    pub gamma: f64,
    /// Hazards per instruction `N_H/N_I`.
    pub hazard_rate: f64,
    /// Complete-gating constant `κ` (latch switchings per FO4).
    pub kappa: f64,
    /// Constant per-instruction memory time `t_mem`, in FO4.
    pub memory_time_fo4: f64,
}

impl WorkloadProfile {
    /// The profile as model-domain [`WorkloadParams`], clamped exactly as
    /// the experiment harness clamps its extractions (`α ≥ 1`,
    /// `γ ∈ [10⁻³, 1]`, `N_H/N_I ≥ 10⁻⁴`).
    pub fn workload_params(&self) -> WorkloadParams {
        WorkloadParams::new(
            self.alpha.max(1.0),
            self.gamma.clamp(1e-3, 1.0),
            self.hazard_rate.max(1e-4),
        )
    }
}

/// One evaluation request: a workload at a pipeline depth, plus the power
/// calibration every backend shares.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Stable workload identifier (e.g. `"spec-int"`). Simulation backends
    /// resolve it to a trace generator; the analytic backend ignores it.
    pub workload: String,
    /// The workload's fitted profile (the analytic backend's sole input).
    pub profile: WorkloadProfile,
    /// Pipeline depth `p`, in stages.
    pub depth: u32,
    /// Warmup instructions (simulation backends only).
    pub warmup: u64,
    /// Measured instructions (simulation backends only).
    pub instructions: u64,
    /// Leakage fraction of non-gated power at the reference depth.
    pub leakage_fraction: f64,
    /// Reference depth for the leakage calibration.
    pub ref_depth: f64,
    /// Latch growth exponent `β`.
    pub latch_growth: f64,
}

impl CellSpec {
    /// A cell with the workspace's default power calibration (15 % leakage
    /// at reference depth 10, `β = 1.3`).
    pub fn new(workload: impl Into<String>, profile: WorkloadProfile, depth: u32) -> Self {
        CellSpec {
            workload: workload.into(),
            profile,
            depth,
            warmup: 0,
            instructions: 0,
            leakage_fraction: 0.15,
            ref_depth: 10.0,
            latch_growth: 1.3,
        }
    }

    /// Content hash of the cell: FNV-1a over the workload id and the bit
    /// patterns of every numeric field. No allocation; collisions are
    /// resolved by full [`PartialEq`] comparison wherever the key is used
    /// (see [`EvalCache`]), so the hash only needs to spread well.
    pub fn key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        };
        for byte in self.workload.bytes() {
            eat(byte);
        }
        eat(0xff); // separator: "ab" + depth 1 must differ from "ab\x01"
        for word in [
            u64::from(self.depth),
            self.warmup,
            self.instructions,
            self.profile.alpha.to_bits(),
            self.profile.gamma.to_bits(),
            self.profile.hazard_rate.to_bits(),
            self.profile.kappa.to_bits(),
            self.profile.memory_time_fo4.to_bits(),
            self.leakage_fraction.to_bits(),
            self.ref_depth.to_bits(),
            self.latch_growth.to_bits(),
        ] {
            for byte in word.to_le_bytes() {
                eat(byte);
            }
        }
        h
    }

    /// Checks the cell for the failure modes every backend rejects:
    /// unpipelined or zero depth, non-finite profile fields, and a power
    /// calibration outside the model's domain.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidCell`] naming the offending field.
    pub fn validate(&self) -> Result<(), EvalError> {
        if self.depth < 1 {
            return Err(EvalError::invalid("depth must be at least 1 stage"));
        }
        let finite = [
            ("alpha", self.profile.alpha),
            ("gamma", self.profile.gamma),
            ("hazard_rate", self.profile.hazard_rate),
            ("kappa", self.profile.kappa),
            ("memory_time_fo4", self.profile.memory_time_fo4),
            ("leakage_fraction", self.leakage_fraction),
            ("ref_depth", self.ref_depth),
            ("latch_growth", self.latch_growth),
        ];
        for (name, value) in finite {
            if !value.is_finite() {
                return Err(EvalError::invalid(format!("{name} must be finite")));
            }
        }
        if !(0.0..1.0).contains(&self.leakage_fraction) {
            return Err(EvalError::invalid("leakage_fraction must be in [0, 1)"));
        }
        if self.ref_depth < 1.0 {
            return Err(EvalError::invalid("ref_depth must be at least 1"));
        }
        if self.latch_growth <= 0.0 {
            return Err(EvalError::invalid("latch_growth must be positive"));
        }
        Ok(())
    }
}

/// The common result row every backend produces for one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOutcome {
    /// Pipeline depth the cell was evaluated at.
    pub depth: u32,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Clock frequency, in 1/FO4.
    pub frequency: f64,
    /// Total time per instruction (`τ_total`), in FO4.
    pub time_per_instruction_fo4: f64,
    /// Instructions per FO4 (`1/τ_total`).
    pub throughput: f64,
    /// Total power under complete clock gating (model units).
    pub power_gated: f64,
    /// Total power without gating (model units).
    pub power_ungated: f64,
    /// `BIPS^m/W` under complete gating, indexed `m - 1` for `m = 1, 2, 3`.
    pub metric_gated: [f64; 3],
    /// `BIPS^m/W` without gating, indexed `m - 1` for `m = 1, 2, 3`.
    pub metric_ungated: [f64; 3],
    /// The workload profile in effect: the input profile for the analytic
    /// backend, the freshly extracted one for a simulation backend.
    pub profile: WorkloadProfile,
}

impl EvalOutcome {
    /// The `BIPS^m/W` metric for an exponent and gating mode.
    pub fn metric(&self, gated: bool, m: MetricExponent) -> f64 {
        let idx = (m.get().round() as usize).clamp(1, 3) - 1;
        if gated {
            self.metric_gated[idx]
        } else {
            self.metric_ungated[idx]
        }
    }
}

/// A backend that can score `(workload, depth)` cells.
///
/// Implementations must be deterministic: the same [`CellSpec`] always
/// yields the same [`EvalOutcome`]. They must also be usable behind
/// `dyn Evaluator` from worker threads, hence the `Send + Sync` bound.
///
/// Failures are values, not panics: an unknown workload, an out-of-range
/// depth or a backend fault comes back as an [`EvalError`], which serving
/// layers map onto their wire protocol.
pub trait Evaluator: Send + Sync {
    /// A short stable backend name (e.g. `"model"`, `"sim"`), used in
    /// logs and experiment records.
    fn name(&self) -> &'static str;

    /// Evaluates one cell.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] when the cell is invalid for this backend
    /// or the backend fails to produce an outcome.
    fn evaluate(&self, cell: &CellSpec) -> Result<EvalOutcome, EvalError>;

    /// Evaluates a batch of cells, returning one result per cell in
    /// order.
    ///
    /// The default implementation evaluates cell by cell; backends with a
    /// per-dispatch cost (the simulation backend's worker-pool fan-out)
    /// override it to answer the whole batch in **one** dispatch — the
    /// hook the serving layer's request coalescing is built on.
    fn evaluate_batch(&self, cells: &[CellSpec]) -> Vec<Result<EvalOutcome, EvalError>> {
        cells.iter().map(|cell| self.evaluate(cell)).collect()
    }

    /// Evaluates one workload across a depth sweep, returning one result
    /// per depth in order.
    ///
    /// Every cell of the sweep is `base` with only [`CellSpec::depth`]
    /// replaced. The default implementation clones and evaluates per
    /// depth; backends with a depth-batched fast path (the simulation
    /// backend's annotate-once / replay-per-depth kernel) override it to
    /// answer the whole sweep in one trace pass.
    fn evaluate_sweep(
        &self,
        base: &CellSpec,
        depths: &[u32],
    ) -> Vec<Result<EvalOutcome, EvalError>> {
        depths
            .iter()
            .map(|&depth| {
                let cell = CellSpec {
                    depth,
                    ..base.clone()
                };
                self.evaluate(&cell)
            })
            .collect()
    }
}

/// The closed-form backend: evaluates the paper's extended theory
/// (`τ_total = τ(p) + t_mem`, Eq. 3/4 power with the profile's κ under
/// gating) directly from a [`WorkloadProfile`], with no simulation.
///
/// A full depth sweep through this backend costs microseconds, so it is
/// the default for interactive exploration and the reference curve the
/// cross-validation experiment compares the simulator against.
#[derive(Debug, Clone, Default)]
pub struct AnalyticModel {
    tech: TechParams,
}

impl AnalyticModel {
    /// An analytic backend on the paper's technology point.
    pub fn paper() -> Self {
        AnalyticModel {
            tech: TechParams::paper(),
        }
    }

    /// An analytic backend on an explicit technology point.
    pub fn with_tech(tech: TechParams) -> Self {
        AnalyticModel { tech }
    }
}

impl Evaluator for AnalyticModel {
    fn name(&self) -> &'static str {
        "model"
    }

    fn evaluate(&self, cell: &CellSpec) -> Result<EvalOutcome, EvalError> {
        cell.validate()?;
        let depth = f64::from(cell.depth);
        let workload = cell.profile.workload_params();
        let perf = PerfModel::new(self.tech, workload);
        let power =
            PowerParams::with_leakage_fraction(cell.leakage_fraction, &self.tech, cell.ref_depth)
                .with_latch_growth(cell.latch_growth);

        let tau = perf.time_per_instruction(depth) + cell.profile.memory_time_fo4;
        let cycle_time = self.tech.cycle_time(depth);
        let frequency = self.tech.frequency(depth);
        let latches = power.latch_count(depth);
        let kappa = cell.profile.kappa.max(1e-6);

        // Switching rates per gating mode (the extended-theory form: under
        // complete gating latches switch with work, κ per unit time).
        let switching_ungated = match power.gating {
            ClockGating::Partial(f_cg) => f_cg * frequency,
            _ => frequency,
        };
        let switching_gated = kappa / tau;
        let power_ungated = (switching_ungated * power.dynamic + power.leakage) * latches;
        let power_gated = (switching_gated * power.dynamic + power.leakage) * latches;

        let mut metric_gated = [0.0; 3];
        let mut metric_ungated = [0.0; 3];
        for m in 1..=3 {
            let tau_m = tau.powi(m as i32);
            metric_gated[m - 1] = 1.0 / (tau_m * power_gated);
            metric_ungated[m - 1] = 1.0 / (tau_m * power_ungated);
        }

        Ok(EvalOutcome {
            depth: cell.depth,
            cpi: tau / cycle_time,
            frequency,
            time_per_instruction_fo4: tau,
            throughput: 1.0 / tau,
            power_gated,
            power_ungated,
            metric_gated,
            metric_ungated,
            profile: cell.profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            alpha: 1.8,
            gamma: 0.35,
            hazard_rate: 0.15,
            kappa: 0.05,
            memory_time_fo4: 2.0,
        }
    }

    #[test]
    fn analytic_outcome_is_internally_consistent() {
        let model = AnalyticModel::paper();
        let cell = CellSpec::new("test", profile(), 10);
        let out = model.evaluate(&cell).expect("valid cell");
        assert_eq!(out.depth, 10);
        assert!(out.cpi > 1.0, "deep pipe with hazards cannot be sub-1 CPI");
        assert!((out.throughput - 1.0 / out.time_per_instruction_fo4).abs() < 1e-15);
        assert!((out.cpi - out.time_per_instruction_fo4 * out.frequency).abs() < 1e-9);
        for m in 0..3 {
            assert!(out.metric_gated[m] > 0.0);
            assert!(out.metric_ungated[m] > 0.0);
        }
    }

    #[test]
    fn gating_saves_power_at_low_utilisation() {
        let model = AnalyticModel::paper();
        let out = model
            .evaluate(&CellSpec::new("test", profile(), 15))
            .expect("valid cell");
        // κ = 0.05 switchings/FO4 is far below the ungated clock rate.
        assert!(out.power_gated < out.power_ungated);
        assert!(out.metric_gated[2] > out.metric_ungated[2]);
    }

    #[test]
    fn throughput_peaks_at_an_interior_depth() {
        let model = AnalyticModel::paper();
        let bips: Vec<f64> = (2..=25)
            .map(|p| {
                model
                    .evaluate(&CellSpec::new("t", profile(), p))
                    .expect("valid cell")
                    .throughput
            })
            .collect();
        let best = bips
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i + 2)
            .unwrap();
        assert!(
            best > 2 && best < 25,
            "optimum depth {best} must be interior"
        );
    }

    #[test]
    fn evaluator_is_object_safe() {
        let backend: Box<dyn Evaluator> = Box::new(AnalyticModel::paper());
        assert_eq!(backend.name(), "model");
        let out = backend
            .evaluate(&CellSpec::new("t", profile(), 8))
            .expect("valid cell");
        assert!(out.throughput > 0.0);
    }

    #[test]
    fn invalid_cells_are_rejected_not_panicked() {
        let model = AnalyticModel::paper();
        let zero_depth = CellSpec::new("t", profile(), 0);
        assert!(matches!(
            model.evaluate(&zero_depth),
            Err(EvalError::InvalidCell { .. })
        ));
        let mut bad_profile = CellSpec::new("t", profile(), 8);
        bad_profile.profile.alpha = f64::NAN;
        assert!(bad_profile.validate().is_err());
        let mut bad_leakage = CellSpec::new("t", profile(), 8);
        bad_leakage.leakage_fraction = 1.5;
        let err = bad_leakage.validate().unwrap_err();
        assert!(err.to_string().contains("leakage_fraction"), "{err}");
    }

    #[test]
    fn batch_default_matches_cell_by_cell() {
        let model = AnalyticModel::paper();
        let cells = [
            CellSpec::new("a", profile(), 6),
            CellSpec::new("b", profile(), 0),
            CellSpec::new("c", profile(), 12),
        ];
        let batch = model.evaluate_batch(&cells);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], model.evaluate(&cells[0]));
        assert!(batch[1].is_err());
        assert_eq!(batch[2], model.evaluate(&cells[2]));
    }

    #[test]
    fn sweep_default_is_the_base_cell_at_each_depth() {
        let model = AnalyticModel::paper();
        let base = CellSpec::new("t", profile(), 1);
        let depths = [4u32, 0, 9, 4];
        let sweep = model.evaluate_sweep(&base, &depths);
        assert_eq!(sweep.len(), depths.len());
        for (&depth, got) in depths.iter().zip(&sweep) {
            let cell = CellSpec {
                depth,
                ..base.clone()
            };
            assert_eq!(got, &model.evaluate(&cell));
        }
        assert!(sweep[1].is_err(), "depth 0 must fail inside a sweep too");
    }

    #[test]
    fn cell_keys_are_content_addressed() {
        let base = CellSpec::new("legacy-00", profile(), 10);
        assert_eq!(base.key(), base.clone().key());
        let mut deeper = base.clone();
        deeper.depth = 11;
        let mut renamed = base.clone();
        renamed.workload = "legacy-01".into();
        let mut recalibrated = base.clone();
        recalibrated.leakage_fraction = 0.3;
        for other in [deeper, renamed, recalibrated] {
            assert_ne!(base.key(), other.key());
        }
    }

    #[test]
    fn metric_accessor_maps_exponents() {
        let out = AnalyticModel::paper()
            .evaluate(&CellSpec::new("t", profile(), 12))
            .expect("valid cell");
        assert_eq!(
            out.metric(true, MetricExponent::BIPS_PER_WATT),
            out.metric_gated[0]
        );
        assert_eq!(
            out.metric(false, MetricExponent::BIPS3_PER_WATT),
            out.metric_ungated[2]
        );
    }
}
