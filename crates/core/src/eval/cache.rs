//! The shared evaluation-cache abstraction.
//!
//! The experiment runner grew the first result cache in the workspace (a
//! single-lock map of finished `SimReport`s); the serving front end needs
//! the same semantics for `EvalOutcome`s, under far more lock contention.
//! Both now consume this module: [`EvalCache`] is the trait (content-keyed
//! lookup with exact-spec collision resolution, saturating service
//! counters), [`ShardedCache`] the one implementation — N independently
//! locked shards selected by key, poison-tolerant, values handed out as
//! [`Arc`](std::sync::Arc)s so concurrent readers never copy.
//!
//! Keys are produced by the spec type's own content hash (the runner's
//! `CellSpec::key()`, the eval layer's [`CellSpec::key`](super::CellSpec::key));
//! a key only needs to spread well, because every bucket resolves
//! collisions by full `PartialEq` comparison.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Hit/miss/insert counters of an evaluation cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requested entries served without recomputation.
    pub hits: u64,
    /// Entries that had to be computed.
    pub misses: u64,
    /// Distinct entries stored since creation.
    pub inserts: u64,
}

impl CacheStats {
    /// Total entries requested.
    pub fn requested(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of requests served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.requested() == 0 {
            0.0
        } else {
            self.hits as f64 / self.requested() as f64
        }
    }
}

/// A concurrent, content-keyed result cache.
///
/// `S` is the spec (request) type; `V` the cached value. Implementations
/// must be usable from many threads at once (`Send + Sync`), must resolve
/// key collisions by exact spec equality, and must tolerate panicked
/// writers (lock poisoning must not take the cache down with it).
///
/// Hit/miss accounting is the *caller's* responsibility via
/// [`count_hits`](EvalCache::count_hits) /
/// [`count_misses`](EvalCache::count_misses): batch consumers like the
/// experiment runner classify an entire batch first (counting in-batch
/// coalescing as hits) and only then dispatch, which a get-side counter
/// could not express.
pub trait EvalCache<S, V>: Send + Sync {
    /// Looks up a finished entry without touching the hit/miss counters.
    fn get(&self, key: u64, spec: &S) -> Option<Arc<V>>;

    /// Stores a finished entry. Returns whether the entry was actually
    /// inserted (false when an equal spec was already present).
    fn insert(&self, key: u64, spec: S, value: Arc<V>) -> bool;

    /// Records entries served without recomputation.
    fn count_hits(&self, n: u64);

    /// Records entries that were computed.
    fn count_misses(&self, n: u64);

    /// Number of distinct entries stored.
    fn len(&self) -> usize;

    /// True when no entry has been stored yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss/insert counters.
    fn stats(&self) -> CacheStats;
}

/// One key's entries; the spec is kept alongside the value to resolve
/// hash collisions by exact comparison.
type Bucket<S, V> = Vec<(S, Arc<V>)>;

/// One independently locked shard of a [`ShardedCache`].
type Shard<S, V> = Mutex<BTreeMap<u64, Bucket<S, V>>>;

/// Default shard count: enough to keep a worker pool off one lock, small
/// enough that an empty cache stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// The workspace's concurrent result cache: N independently locked
/// [`BTreeMap`] shards selected by key, shared by the experiment runner
/// (`SimReport` values) and the evaluation service (`EvalOutcome` values).
///
/// Locks are poison-tolerant: a panicking writer leaves at worst one
/// half-inserted bucket entry behind, never an unusable cache.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pipedepth_core::eval::{EvalCache, ShardedCache};
///
/// let cache: ShardedCache<&'static str, u32> = ShardedCache::new();
/// assert!(cache.get(7, &"spec").is_none());
/// assert!(cache.insert(7, "spec", Arc::new(42)));
/// assert_eq!(*cache.get(7, &"spec").unwrap(), 42);
/// assert!(!cache.insert(7, "spec", Arc::new(42)), "duplicate spec");
/// ```
pub struct ShardedCache<S, V> {
    shards: Vec<Shard<S, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
}

impl<S, V> ShardedCache<S, V> {
    /// An empty cache with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache with an explicit shard count (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        ShardedCache {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Number of shards (lock granularity).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key maps to. Keys are content hashes whose low bits
    /// already spread well, so plain modulo suffices.
    fn shard(&self, key: u64) -> &Shard<S, V> {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }
}

impl<S, V> Default for ShardedCache<S, V> {
    fn default() -> Self {
        ShardedCache::new()
    }
}

impl<S, V> std::fmt::Debug for ShardedCache<S, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats_inner())
            .finish()
    }
}

impl<S, V> ShardedCache<S, V> {
    fn stats_inner(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
        }
    }
}

// Inherent mirrors of the trait methods, so concrete consumers (the
// runner's `SimCache` alias) can call them without importing the trait.
impl<S: PartialEq, V> ShardedCache<S, V> {
    /// Looks up a finished entry without touching the hit/miss counters.
    pub fn get(&self, key: u64, spec: &S) -> Option<Arc<V>> {
        let shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        shard
            .get(&key)?
            .iter()
            .find(|(s, _)| s == spec)
            .map(|(_, v)| Arc::clone(v))
    }

    /// Stores a finished entry. Returns whether the entry was actually
    /// inserted (false when an equal spec was already present).
    pub fn insert(&self, key: u64, spec: S, value: Arc<V>) -> bool {
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let bucket = shard.entry(key).or_default();
        if bucket.iter().any(|(s, _)| s == &spec) {
            return false;
        }
        bucket.push((spec, value));
        self.inserts.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Records entries served without recomputation.
    pub fn count_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Records entries that were computed.
    pub fn count_misses(&self, n: u64) {
        self.misses.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of distinct entries stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// True when no entry has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss/insert counters.
    pub fn stats(&self) -> CacheStats {
        self.stats_inner()
    }
}

impl<S: Clone, V> ShardedCache<S, V> {
    /// A point-in-time snapshot of every entry, in deterministic
    /// (shard-index, key) order — the export path for persistence tiers.
    /// Each shard is locked briefly in turn; the copy is fully detached
    /// before this returns, so callers never hold a shard guard while
    /// doing I/O with the result.
    pub fn entries(&self) -> Vec<(S, Arc<V>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            for bucket in shard.values() {
                out.extend(
                    bucket
                        .iter()
                        .map(|(spec, value)| (spec.clone(), Arc::clone(value))),
                );
            }
        }
        out
    }
}

impl<S: PartialEq + Send + Sync, V: Send + Sync> EvalCache<S, V> for ShardedCache<S, V> {
    fn get(&self, key: u64, spec: &S) -> Option<Arc<V>> {
        ShardedCache::get(self, key, spec)
    }

    fn insert(&self, key: u64, spec: S, value: Arc<V>) -> bool {
        ShardedCache::insert(self, key, spec, value)
    }

    fn count_hits(&self, n: u64) {
        ShardedCache::count_hits(self, n);
    }

    fn count_misses(&self, n: u64) {
        ShardedCache::count_misses(self, n);
    }

    fn len(&self) -> usize {
        ShardedCache::len(self)
    }

    fn stats(&self) -> CacheStats {
        ShardedCache::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_deduplicates() {
        let cache: ShardedCache<u32, String> = ShardedCache::with_shards(4);
        assert!(cache.is_empty());
        assert!(cache.insert(1, 10, Arc::new("a".into())));
        assert!(!cache.insert(1, 10, Arc::new("a".into())));
        assert!(cache.insert(1, 11, Arc::new("b".into())), "collision kept");
        assert_eq!(cache.len(), 2);
        assert_eq!(*cache.get(1, &11).expect("stored"), "b");
        assert!(cache.get(2, &10).is_none(), "different key, same spec");
    }

    #[test]
    fn stats_track_hits_misses_inserts() {
        let cache: ShardedCache<u32, u32> = ShardedCache::new();
        cache.count_misses(3);
        cache.count_hits(1);
        cache.insert(0, 0, Arc::new(0));
        let stats = cache.stats();
        assert_eq!(stats.requested(), 4);
        assert_eq!(stats.inserts, 1);
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shard_count_is_clamped_and_spreads_keys() {
        let cache: ShardedCache<u32, u32> = ShardedCache::with_shards(0);
        assert_eq!(cache.shards(), 1);
        let cache: ShardedCache<u64, u64> = ShardedCache::with_shards(8);
        for key in 0..64u64 {
            cache.insert(key, key, Arc::new(key));
        }
        assert_eq!(cache.len(), 64, "entries must survive sharding");
        for key in 0..64u64 {
            assert_eq!(*cache.get(key, &key).expect("present"), key);
        }
    }

    #[test]
    fn object_safe_behind_dyn() {
        let cache: Box<dyn EvalCache<u32, u32>> = Box::new(ShardedCache::new());
        cache.insert(5, 5, Arc::new(25));
        assert_eq!(*cache.get(5, &5).expect("stored"), 25);
        assert!(!cache.is_empty());
    }

    #[test]
    fn concurrent_writers_agree() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for k in 0..100u64 {
                        cache.insert(k, k, Arc::new(k * k));
                        let _ = cache.get(k ^ t, &(k ^ t));
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100, "duplicates collapse across threads");
        assert_eq!(cache.stats().inserts, 100);
    }
}
