//! The two-tier evaluation cache: an in-memory [`ShardedCache`] in front
//! of an optional warm tier loaded from a persistent store.
//!
//! The warm tier is itself a [`ShardedCache`] — the decoded in-memory
//! image of an on-disk snapshot (see the `pipedepth-store` crate), built
//! once at startup and read-mostly thereafter. Lookups probe memory
//! first; on a memory miss the warm tier is consulted and, on a hit, the
//! entry is *promoted* into the memory tier so every later request is a
//! plain memory hit. Because the warm tier stores full specs (not just
//! hashes) and resolves collisions by `PartialEq` exactly like the
//! memory tier, a promoted answer is always the answer the simulator
//! would have produced — a corrupt or mismatched store never reaches
//! this layer (the store loader already degraded it to a cold start).
//!
//! Accounting stays two-level on purpose: the memory tier's counters
//! keep their historical meaning (the caller classifies batches and
//! counts hits/misses itself, see [`EvalCache`]), while the warm tier
//! counts its own probe outcomes internally — [`TieredCache::warm_stats`]
//! is the "served from disk" number the run manifest reports.
//!
//! Without a warm tier attached, every method is a direct pass-through
//! to the memory tier: a run without `--store` behaves bit-for-bit like
//! the single-tier cache it replaced.

use super::cache::{CacheStats, EvalCache, ShardedCache};
use std::sync::Arc;

/// A memory tier backed by an optional warm (disk-image) tier with
/// promote-on-hit.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use pipedepth_core::eval::{ShardedCache, TieredCache};
///
/// // The warm tier is the decoded image of a previous run's snapshot.
/// let warm: ShardedCache<&'static str, u32> = ShardedCache::new();
/// warm.insert(7, "spec", Arc::new(42));
///
/// let cache = TieredCache::new().with_warm(warm);
/// assert_eq!(*cache.get(7, &"spec").unwrap(), 42); // promoted
/// assert_eq!(cache.warm_stats().unwrap().hits, 1);
/// assert_eq!(cache.len(), 1, "now resident in the memory tier");
/// ```
#[derive(Debug, Default)]
pub struct TieredCache<S, V> {
    memory: ShardedCache<S, V>,
    warm: Option<ShardedCache<S, V>>,
}

impl<S, V> TieredCache<S, V> {
    /// An empty cache with no warm tier (pure pass-through).
    pub fn new() -> Self {
        TieredCache {
            memory: ShardedCache::new(),
            warm: None,
        }
    }

    /// An empty cache with an explicit memory shard count.
    pub fn with_shards(shards: usize) -> Self {
        TieredCache {
            memory: ShardedCache::with_shards(shards),
            warm: None,
        }
    }

    /// Attaches a warm tier (builder form).
    #[must_use]
    pub fn with_warm(mut self, warm: ShardedCache<S, V>) -> Self {
        self.warm = Some(warm);
        self
    }

    /// Attaches a warm tier to an existing cache.
    pub fn attach_warm(&mut self, warm: ShardedCache<S, V>) {
        self.warm = Some(warm);
    }

    /// True when a warm tier is attached.
    pub fn has_warm(&self) -> bool {
        self.warm.is_some()
    }
}

impl<S: PartialEq + Clone, V> TieredCache<S, V> {
    /// Probe counters of the warm tier (`None` when not attached):
    /// `hits` = memory misses served from the warm image, `misses` =
    /// probes nothing could serve.
    pub fn warm_stats(&self) -> Option<CacheStats> {
        self.warm.as_ref().map(ShardedCache::stats)
    }

    /// Number of entries resident in the warm tier.
    pub fn warm_len(&self) -> usize {
        self.warm.as_ref().map_or(0, ShardedCache::len)
    }

    /// Looks up an entry: memory tier first, then the warm tier, promoting
    /// a warm hit into memory. Does not touch the memory tier's hit/miss
    /// counters (the caller's job, as for [`ShardedCache::get`]); warm
    /// probe outcomes are counted here, since only this method knows them.
    pub fn get(&self, key: u64, spec: &S) -> Option<Arc<V>> {
        if let Some(value) = self.memory.get(key, spec) {
            return Some(value);
        }
        let warm = self.warm.as_ref()?;
        match warm.get(key, spec) {
            Some(value) => {
                warm.count_hits(1);
                self.memory.insert(key, spec.clone(), Arc::clone(&value));
                Some(value)
            }
            None => {
                warm.count_misses(1);
                None
            }
        }
    }

    /// Stores a finished entry in the memory tier. Returns whether the
    /// entry was actually inserted (false when an equal spec was already
    /// present).
    pub fn insert(&self, key: u64, spec: S, value: Arc<V>) -> bool {
        self.memory.insert(key, spec, value)
    }

    /// Records entries served without recomputation (memory-tier counter).
    pub fn count_hits(&self, n: u64) {
        self.memory.count_hits(n);
    }

    /// Records entries that were computed (memory-tier counter).
    pub fn count_misses(&self, n: u64) {
        self.memory.count_misses(n);
    }

    /// Number of distinct entries resident in the memory tier.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// True when the memory tier holds no entry yet.
    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    /// The memory tier's hit/miss/insert counters (the classification
    /// counters the experiment runner has always reported).
    pub fn stats(&self) -> CacheStats {
        self.memory.stats()
    }

    /// A deterministic point-in-time snapshot of the memory tier — the
    /// export path a persistence layer encodes and publishes.
    pub fn entries(&self) -> Vec<(S, Arc<V>)> {
        self.memory.entries()
    }
}

impl<S: PartialEq + Clone + Send + Sync, V: Send + Sync> EvalCache<S, V> for TieredCache<S, V> {
    fn get(&self, key: u64, spec: &S) -> Option<Arc<V>> {
        TieredCache::get(self, key, spec)
    }

    fn insert(&self, key: u64, spec: S, value: Arc<V>) -> bool {
        TieredCache::insert(self, key, spec, value)
    }

    fn count_hits(&self, n: u64) {
        TieredCache::count_hits(self, n);
    }

    fn count_misses(&self, n: u64) {
        TieredCache::count_misses(self, n);
    }

    fn len(&self) -> usize {
        TieredCache::len(self)
    }

    fn stats(&self) -> CacheStats {
        TieredCache::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm_image(entries: &[(u64, u32, u32)]) -> ShardedCache<u32, u32> {
        let warm = ShardedCache::new();
        for &(key, spec, value) in entries {
            warm.insert(key, spec, Arc::new(value));
        }
        warm
    }

    #[test]
    fn passes_through_without_a_warm_tier() {
        let cache: TieredCache<u32, u32> = TieredCache::new();
        assert!(!cache.has_warm());
        assert!(cache.warm_stats().is_none());
        assert_eq!(cache.warm_len(), 0);
        assert!(cache.get(1, &10).is_none());
        assert!(cache.insert(1, 10, Arc::new(100)));
        assert_eq!(*cache.get(1, &10).expect("stored"), 100);
        cache.count_hits(1);
        cache.count_misses(1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn warm_hits_promote_into_memory() {
        let cache = TieredCache::with_shards(4).with_warm(warm_image(&[(7, 70, 700)]));
        assert!(cache.has_warm());
        assert_eq!(cache.warm_len(), 1);
        assert!(cache.is_empty(), "warm entries are not memory entries");
        assert_eq!(*cache.get(7, &70).expect("warm hit"), 700);
        assert_eq!(cache.len(), 1, "promoted");
        // The second get is a pure memory hit: warm counters unchanged.
        assert_eq!(*cache.get(7, &70).expect("memory hit"), 700);
        let warm = cache.warm_stats().expect("attached");
        assert_eq!((warm.hits, warm.misses), (1, 0));
        assert_eq!(cache.stats().inserts, 1, "promotion inserted once");
    }

    #[test]
    fn warm_misses_are_counted_once_per_probe() {
        let cache = TieredCache::new().with_warm(warm_image(&[(7, 70, 700)]));
        assert!(cache.get(8, &80).is_none());
        assert!(cache.get(7, &71).is_none(), "same key, different spec");
        let warm = cache.warm_stats().expect("attached");
        assert_eq!((warm.hits, warm.misses), (0, 2));
    }

    #[test]
    fn collisions_resolve_by_spec_in_both_tiers() {
        let warm = warm_image(&[(1, 10, 100), (1, 11, 110)]);
        let cache = TieredCache::new().with_warm(warm);
        assert_eq!(*cache.get(1, &11).expect("collision kept"), 110);
        assert_eq!(*cache.get(1, &10).expect("collision kept"), 100);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn entries_snapshot_the_memory_tier_only() {
        let cache = TieredCache::new().with_warm(warm_image(&[(1, 10, 100), (2, 20, 200)]));
        cache.insert(3, 30, Arc::new(300));
        let _ = cache.get(1, &10); // promote one of the two warm entries
        let mut entries: Vec<(u32, u32)> = cache
            .entries()
            .into_iter()
            .map(|(spec, value)| (spec, *value))
            .collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(10, 100), (30, 300)]);
    }

    #[test]
    fn object_safe_behind_dyn() {
        let cache: Box<dyn EvalCache<u32, u32>> = Box::new(TieredCache::new());
        cache.insert(5, 5, Arc::new(25));
        assert_eq!(*cache.get(5, &5).expect("stored"), 25);
        assert_eq!(cache.stats().inserts, 1);
        assert!(!cache.is_empty());
    }
}
