//! The analytic power model (the paper's Eq. 3, after Srinivasan et al.,
//! MICRO 2002).
//!
//! Total power is latch-dominated:
//!
//! ```text
//! P_T(p) = (f_cg·f_s·P_d + P_l) · N_L · p^β
//! ```
//!
//! With complete fine-grained clock gating the paper substitutes
//! `f_cg·f_s → κ·(T/N_I)⁻¹`: latches switch with *work*, so effective
//! switching is proportional to instruction throughput rather than to the
//! clock.

use crate::params::{ClockGating, PowerParams, TechParams};
use crate::perf::PerfModel;

/// The analytic power model: Eq. 3 of the paper.
///
/// Owns a [`PerfModel`] because the complete-clock-gating variant needs the
/// workload's time-per-instruction.
///
/// # Examples
///
/// ```
/// use pipedepth_core::{PowerModel, PerfModel, PowerParams, TechParams, WorkloadParams};
///
/// let perf = PerfModel::new(TechParams::paper(), WorkloadParams::typical());
/// let power = PowerModel::new(perf, PowerParams::paper());
/// // Deeper pipelines burn strictly more power (higher f, more latches).
/// assert!(power.total_power(20.0) > power.total_power(5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    perf: PerfModel,
    params: PowerParams,
}

impl PowerModel {
    /// Creates the power model on top of a performance model.
    pub fn new(perf: PerfModel, params: PowerParams) -> Self {
        PowerModel { perf, params }
    }

    /// The underlying performance model.
    pub fn perf(&self) -> &PerfModel {
        &self.perf
    }

    /// Power parameters.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Technology parameters (shared with the performance model).
    pub fn tech(&self) -> &TechParams {
        self.perf.tech()
    }

    /// Effective per-latch switching rate `f_cg·f_s` at depth `p` — the
    /// frequency-like factor multiplying `P_d` in Eq. 3, after the gating
    /// mode's substitution.
    pub fn switching_rate(&self, depth: f64) -> f64 {
        let f_s = self.tech().frequency(depth);
        match self.params.gating {
            ClockGating::None => f_s,
            ClockGating::Partial(f_cg) => f_cg * f_s,
            ClockGating::Complete { kappa } => kappa * self.perf.throughput(depth),
        }
    }

    /// Dynamic power at depth `p`: `switching_rate·P_d·N_L·p^β`.
    pub fn dynamic_power(&self, depth: f64) -> f64 {
        self.switching_rate(depth) * self.params.dynamic * self.params.latch_count(depth)
    }

    /// Leakage power at depth `p`: `P_l·N_L·p^β`.
    pub fn leakage_power(&self, depth: f64) -> f64 {
        self.params.leakage * self.params.latch_count(depth)
    }

    /// Total power `P_T(p)` (Eq. 3).
    pub fn total_power(&self, depth: f64) -> f64 {
        self.dynamic_power(depth) + self.leakage_power(depth)
    }

    /// Fraction of total power that is leakage at depth `p`.
    pub fn leakage_share(&self, depth: f64) -> f64 {
        self.leakage_power(depth) / self.total_power(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::WorkloadParams;

    fn base() -> PerfModel {
        PerfModel::new(TechParams::paper(), WorkloadParams::typical())
    }

    #[test]
    fn total_is_dynamic_plus_leakage() {
        let m = PowerModel::new(base(), PowerParams::paper());
        for p in [2.0, 8.0, 25.0] {
            let t = m.total_power(p);
            assert!((t - m.dynamic_power(p) - m.leakage_power(p)).abs() < 1e-12 * t);
        }
    }

    #[test]
    fn power_increases_with_depth() {
        let m = PowerModel::new(base(), PowerParams::paper());
        let mut prev = m.total_power(1.0);
        for p in 2..=30 {
            let cur = m.total_power(p as f64);
            assert!(cur > prev, "power not monotone at p={p}");
            prev = cur;
        }
    }

    #[test]
    fn partial_gating_scales_dynamic_only() {
        let no_gate = PowerModel::new(base(), PowerParams::paper());
        let half = PowerModel::new(
            base(),
            PowerParams::paper().with_gating(ClockGating::Partial(0.5)),
        );
        let p = 10.0;
        assert!((half.dynamic_power(p) - 0.5 * no_gate.dynamic_power(p)).abs() < 1e-12);
        assert_eq!(half.leakage_power(p), no_gate.leakage_power(p));
    }

    #[test]
    fn complete_gating_tracks_throughput() {
        let gated = PowerModel::new(
            base(),
            PowerParams::paper().with_gating(ClockGating::Complete { kappa: 2.0 }),
        );
        let p = 12.0;
        let expected = 2.0 * gated.perf().throughput(p);
        assert!((gated.switching_rate(p) - expected).abs() < 1e-12);
    }

    #[test]
    fn complete_gating_switches_slower_than_clock_at_depth() {
        // With κ such that at most ~α instructions complete per cycle and
        // hazards idle the machine, throughput < α·f_s; per-instruction
        // switching is below the α-scaled clock rate.
        let gated = PowerModel::new(
            base(),
            PowerParams::paper().with_gating(ClockGating::complete()),
        );
        let p = 15.0;
        let alpha = gated.perf().workload().alpha;
        assert!(gated.switching_rate(p) < alpha * gated.tech().frequency(p));
    }

    #[test]
    fn leakage_share_grows_with_leakage_parameter() {
        let tech = TechParams::paper();
        let small = PowerModel::new(base(), PowerParams::with_leakage_fraction(0.1, &tech, 10.0));
        let large = PowerModel::new(base(), PowerParams::with_leakage_fraction(0.6, &tech, 10.0));
        assert!(large.leakage_share(10.0) > small.leakage_share(10.0));
        assert!((small.leakage_share(10.0) - 0.1).abs() < 1e-12);
        assert!((large.leakage_share(10.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn latch_growth_amplifies_power_scaling() {
        let lin = PowerModel::new(base(), PowerParams::paper().with_latch_growth(1.0));
        let sup = PowerModel::new(base(), PowerParams::paper().with_latch_growth(1.8));
        let ratio_lin = lin.total_power(20.0) / lin.total_power(10.0);
        let ratio_sup = sup.total_power(20.0) / sup.total_power(10.0);
        assert!(ratio_sup > ratio_lin);
    }
}
