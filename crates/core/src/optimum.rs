//! Unified optimum-depth solving.
//!
//! Three independent routes to the optimum pipeline depth are provided and
//! cross-checked in tests:
//!
//! 1. **numeric** — golden-section maximisation of the raw metric (works for
//!    every gating mode; this is the reference);
//! 2. **cubic** — positive root of the exact optimality cubic (non-/partial
//!    gating);
//! 3. **quadratic** — the paper's Eq. 7 closed form (non-/partial gating,
//!    approximate).

use crate::metric::PipelineModel;
use crate::optimality;
use crate::params::MetricExponent;
use pipedepth_math::optimize;

/// Depth range the solver searches. The paper simulates 2–25 stages; we
/// search a slightly wider continuous range so theory optima outside the
/// simulated window are still reported.
pub const DEPTH_RANGE: (f64, f64) = (1.0, 60.0);

/// The outcome of an optimum-depth computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimum {
    /// An interior optimum exists at the given depth (stages).
    Pipelined {
        /// Optimal pipeline depth in stages (continuous).
        depth: f64,
        /// Metric value at the optimum.
        metric: f64,
    },
    /// The metric is maximised at the shallowest design: no pipelining.
    ///
    /// This is the paper's outcome for BIPS/W and (with its parameters)
    /// BIPS²/W.
    Unpipelined {
        /// Metric value at depth 1.
        metric: f64,
    },
    /// The metric is still rising at the top of the search range — the
    /// power term is too weak to turn the curve over (performance-only
    /// behaviour within the window).
    DeeperThanRange {
        /// Metric value at the top of the range.
        metric: f64,
    },
}

impl Optimum {
    /// The optimal depth if an interior optimum exists.
    pub fn depth(&self) -> Option<f64> {
        match self {
            Optimum::Pipelined { depth, .. } => Some(*depth),
            _ => None,
        }
    }

    /// The metric value at the reported design point.
    pub fn metric(&self) -> f64 {
        match self {
            Optimum::Pipelined { metric, .. }
            | Optimum::Unpipelined { metric }
            | Optimum::DeeperThanRange { metric } => *metric,
        }
    }
}

/// Finds the optimum pipeline depth by direct numeric maximisation of the
/// metric over [`DEPTH_RANGE`]. Works for every gating mode.
///
/// # Examples
///
/// ```
/// use pipedepth_core::{numeric_optimum, MetricExponent, PipelineModel,
///                      PowerParams, TechParams, WorkloadParams, ClockGating};
///
/// let gated = PipelineModel::new(
///     TechParams::paper(),
///     WorkloadParams::typical(),
///     PowerParams::paper().with_gating(ClockGating::complete()),
/// );
/// let opt = numeric_optimum(&gated, MetricExponent::BIPS3_PER_WATT);
/// assert!(opt.depth().is_some());
/// ```
pub fn numeric_optimum(model: &PipelineModel, m: MetricExponent) -> Optimum {
    let (lo, hi) = DEPTH_RANGE;
    let max = optimize::maximize(|p| model.log_metric(p, m), lo, hi, 512);
    let metric = max.value.exp();
    if max.interior {
        Optimum::Pipelined {
            depth: max.x,
            metric,
        }
    } else if max.x <= lo + (hi - lo) * 1e-6 {
        Optimum::Unpipelined { metric }
    } else {
        Optimum::DeeperThanRange { metric }
    }
}

/// Finds the optimum by the exact cubic (non-/partial gating) and falls back
/// to [`numeric_optimum`] for complete gating.
pub fn analytic_optimum(model: &PipelineModel, m: MetricExponent) -> Optimum {
    match optimality::cubic_optimum(model, m) {
        Some(depth) if depth >= 1.0 => Optimum::Pipelined {
            depth,
            metric: model.metric(depth, m),
        },
        Some(_) => Optimum::Unpipelined {
            metric: model.metric(1.0, m),
        },
        None => {
            if optimality::optimality_cubic(model, m).is_some() {
                // Polynomial existed but no positive root: boundary optimum.
                Optimum::Unpipelined {
                    metric: model.metric(1.0, m),
                }
            } else {
                numeric_optimum(model, m)
            }
        }
    }
}

/// The paper's Eq. 7 closed-form optimum (quadratic approximation), when it
/// applies and yields a physical (≥ 1 stage) depth.
pub fn closed_form_optimum(model: &PipelineModel, m: MetricExponent) -> Option<f64> {
    optimality::quadratic_optimum(model, m).filter(|&p| p >= 1.0)
}

/// Full report comparing every solution route for one model and metric.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimumReport {
    /// The metric exponent analysed.
    pub m: MetricExponent,
    /// Reference numeric optimum.
    pub numeric: Optimum,
    /// Exact-cubic route (equals numeric for complete gating).
    pub analytic: Optimum,
    /// Paper's Eq. 7 closed form, when applicable.
    pub closed_form: Option<f64>,
    /// Performance-only optimum (Eq. 2), for context.
    pub perf_only: f64,
    /// Cycle time (FO4/stage) at the numeric optimum design point, when an
    /// interior optimum exists.
    pub cycle_time_fo4: Option<f64>,
}

impl std::fmt::Display for OptimumReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "optimum report for {}", self.m)?;
        match self.numeric {
            Optimum::Pipelined { depth, .. } => {
                writeln!(
                    f,
                    "  numeric optimum : {depth:.2} stages ({:.1} FO4/stage)",
                    self.cycle_time_fo4.unwrap_or(f64::NAN)
                )?;
            }
            Optimum::Unpipelined { .. } => writeln!(f, "  numeric optimum : unpipelined")?,
            Optimum::DeeperThanRange { .. } => {
                writeln!(f, "  numeric optimum : beyond the search range")?
            }
        }
        if let Some(d) = self.analytic.depth() {
            writeln!(f, "  analytic (cubic): {d:.2} stages")?;
        }
        if let Some(d) = self.closed_form {
            writeln!(f, "  Eq. 7 closed    : {d:.2} stages")?;
        }
        writeln!(f, "  perf-only Eq. 2 : {:.2} stages", self.perf_only)
    }
}

/// Produces an [`OptimumReport`] for a model/metric pair.
pub fn report(model: &PipelineModel, m: MetricExponent) -> OptimumReport {
    let numeric = numeric_optimum(model, m);
    let analytic = analytic_optimum(model, m);
    let closed_form = closed_form_optimum(model, m);
    let cycle_time_fo4 = numeric.depth().map(|p| model.tech().cycle_time(p));
    OptimumReport {
        m,
        numeric,
        analytic,
        closed_form,
        perf_only: model.perf().optimum_depth(),
        cycle_time_fo4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ClockGating, PowerParams, TechParams, WorkloadParams};

    const M3: MetricExponent = MetricExponent::BIPS3_PER_WATT;

    fn ungated() -> PipelineModel {
        PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper(),
        )
    }

    fn gated() -> PipelineModel {
        PipelineModel::new(
            TechParams::paper(),
            WorkloadParams::typical(),
            PowerParams::paper().with_gating(ClockGating::complete()),
        )
    }

    #[test]
    fn numeric_and_analytic_agree_ungated() {
        let m = ungated();
        let n = numeric_optimum(&m, M3).depth().unwrap();
        let a = analytic_optimum(&m, M3).depth().unwrap();
        assert!((n - a).abs() < 1e-4 * n, "numeric {n} vs analytic {a}");
    }

    #[test]
    fn numeric_and_analytic_agree_gated() {
        let m = gated();
        let n = numeric_optimum(&m, M3).depth().unwrap();
        let a = analytic_optimum(&m, M3).depth().unwrap();
        assert!((n - a).abs() < 1e-6 * n.max(1.0));
    }

    #[test]
    fn bips_per_watt_is_unpipelined() {
        let m = ungated();
        assert!(matches!(
            numeric_optimum(&m, MetricExponent::BIPS_PER_WATT),
            Optimum::Unpipelined { .. }
        ));
        assert!(matches!(
            analytic_optimum(&m, MetricExponent::BIPS_PER_WATT),
            Optimum::Unpipelined { .. }
        ));
    }

    #[test]
    fn gating_deepens_the_optimum() {
        // The paper: "Clock gating pushes the optimum to deeper pipelines."
        let pu = numeric_optimum(&ungated(), M3).depth().unwrap();
        let pg = numeric_optimum(&gated(), M3).depth().unwrap();
        assert!(pg > pu, "gated {pg} should exceed ungated {pu}");
    }

    #[test]
    fn power_always_shortens_vs_perf_only() {
        // "Consideration of power always leads to shorter pipelines."
        for model in [ungated(), gated()] {
            let r = report(&model, M3);
            if let Some(d) = r.numeric.depth() {
                assert!(d < r.perf_only, "{d} vs perf-only {}", r.perf_only);
            }
        }
    }

    #[test]
    fn report_cycle_time_consistent() {
        let r = report(&gated(), M3);
        let d = r.numeric.depth().unwrap();
        let t = r.cycle_time_fo4.unwrap();
        assert!((t - (2.5 + 140.0 / d)).abs() < 1e-9);
    }

    #[test]
    fn higher_m_gives_deeper_optimum() {
        let m3 = numeric_optimum(&gated(), M3).depth().unwrap();
        let m6 = numeric_optimum(&gated(), MetricExponent::new(6.0))
            .depth()
            .unwrap();
        assert!(m6 > m3);
    }

    #[test]
    fn huge_m_approaches_perf_only_optimum() {
        let model = gated();
        let m_inf = numeric_optimum(&model, MetricExponent::new(500.0))
            .depth()
            .unwrap();
        let perf = model.perf().optimum_depth();
        assert!(
            (m_inf - perf).abs() < 0.05 * perf,
            "m→∞ {m_inf} vs Eq. 2 {perf}"
        );
    }

    #[test]
    fn optimum_accessors() {
        let o = Optimum::Pipelined {
            depth: 7.0,
            metric: 0.5,
        };
        assert_eq!(o.depth(), Some(7.0));
        assert_eq!(o.metric(), 0.5);
        let u = Optimum::Unpipelined { metric: 0.1 };
        assert_eq!(u.depth(), None);
        assert_eq!(u.metric(), 0.1);
    }
}
