//! Crossover analysis: at what metric exponent does pipelining start to
//! pay?
//!
//! The paper shows the family `BIPS^m/W` divides at thresholds in `m`:
//! below them the optimum is an unpipelined design, above them a pipelined
//! one (necessary condition `m > β`; `m > β + 1` when leakage is
//! negligible). This module locates the *exact* crossover exponent for a
//! concrete model by bisection, and the depth at which the pipeline first
//! becomes worthwhile.

use crate::metric::PipelineModel;
use crate::optimum::{numeric_optimum, Optimum};
use crate::params::MetricExponent;

/// Search range for the crossover exponent.
const M_RANGE: (f64, f64) = (0.5, 24.0);

/// The crossover point of a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossover {
    /// Smallest metric exponent with a pipelined (depth > threshold)
    /// optimum.
    pub exponent: f64,
    /// The optimum depth just above the crossover.
    pub onset_depth: f64,
}

/// Whether metric exponent `m` yields a pipelined optimum deeper than
/// `min_depth` stages.
fn pipelined_at(model: &PipelineModel, m: f64, min_depth: f64) -> Option<f64> {
    match numeric_optimum(model, MetricExponent::new(m)) {
        Optimum::Pipelined { depth, .. } if depth >= min_depth => Some(depth),
        _ => None,
    }
}

/// Finds the smallest metric exponent whose optimum is a pipeline of at
/// least `min_depth` stages (use 2.0 for "a real pipeline"; values very
/// close to 1 are indistinguishable from the unpipelined design).
///
/// Returns `None` if even `m = 24` does not pipeline (e.g. β ≥ 24 — not a
/// physical configuration) or if the model pipelines already at the bottom
/// of the search range.
///
/// # Panics
///
/// Panics unless `min_depth > 1`.
///
/// # Examples
///
/// ```
/// use pipedepth_core::{crossover_exponent, PipelineModel, PowerParams,
///                      TechParams, WorkloadParams};
///
/// let model = PipelineModel::new(
///     TechParams::paper(),
///     WorkloadParams::typical(),
///     PowerParams::paper(),
/// );
/// let cross = crossover_exponent(&model, 2.0).expect("crossover exists");
/// // BIPS/W (m=1) never pipelines; BIPS³/W does: the threshold is between.
/// assert!(cross.exponent > 1.0 && cross.exponent < 3.0);
/// ```
pub fn crossover_exponent(model: &PipelineModel, min_depth: f64) -> Option<Crossover> {
    assert!(min_depth > 1.0, "minimum depth must exceed one stage");
    let (mut lo, mut hi) = M_RANGE;
    if pipelined_at(model, lo, min_depth).is_some() {
        return None; // already pipelined at the smallest exponent
    }
    pipelined_at(model, hi, min_depth)?;
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if pipelined_at(model, mid, min_depth).is_some() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let onset_depth = pipelined_at(model, hi, min_depth)?;
    Some(Crossover {
        exponent: hi,
        onset_depth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ClockGating, PowerParams, TechParams, WorkloadParams};

    fn model_with(power: PowerParams) -> PipelineModel {
        PipelineModel::new(TechParams::paper(), WorkloadParams::typical(), power)
    }

    #[test]
    fn crossover_between_m2_and_m3_for_defaults() {
        // BIPS²/W barely fails, BIPS³/W clearly succeeds with paper
        // parameters, so the crossover lies between 2-ish and 3.
        let cross = crossover_exponent(&model_with(PowerParams::paper()), 2.0).unwrap();
        assert!(
            cross.exponent > 1.5 && cross.exponent < 3.0,
            "crossover at m = {}",
            cross.exponent
        );
        assert!(cross.onset_depth >= 2.0);
    }

    #[test]
    fn crossover_exceeds_beta() {
        // The paper's necessary condition m > β.
        for beta in [1.0, 1.3, 1.6] {
            let power = PowerParams::paper().with_latch_growth(beta);
            let cross = crossover_exponent(&model_with(power), 2.0).unwrap();
            assert!(
                cross.exponent > beta,
                "β = {beta}: crossover {}",
                cross.exponent
            );
        }
    }

    #[test]
    fn crossover_grows_with_beta() {
        let at = |beta| {
            crossover_exponent(
                &model_with(PowerParams::paper().with_latch_growth(beta)),
                2.0,
            )
            .unwrap()
            .exponent
        };
        assert!(at(1.6) > at(1.3));
        assert!(at(1.3) > at(1.0));
    }

    #[test]
    fn near_zero_leakage_needs_roughly_beta_plus_one() {
        // With P_l → 0 the exact condition from the cubic's constant term
        // is m > β + 1 (for an optimum anywhere above a single stage).
        let tech = TechParams::paper();
        let power = PowerParams::with_leakage_fraction(0.001, &tech, 10.0);
        let beta = power.latch_growth;
        let cross = crossover_exponent(&model_with(power), 1.2).unwrap();
        assert!(
            (cross.exponent - (beta + 1.0)).abs() < 0.35,
            "crossover {} vs β+1 = {}",
            cross.exponent,
            beta + 1.0
        );
    }

    #[test]
    fn gating_lowers_the_crossover_or_close() {
        // Gating removes the frequency term from power, making pipelining
        // pay at smaller m than the leakage-free ungated machine.
        let ungated = crossover_exponent(&model_with(PowerParams::paper()), 2.0)
            .unwrap()
            .exponent;
        let gated = crossover_exponent(
            &model_with(PowerParams::paper().with_gating(ClockGating::complete())),
            2.0,
        )
        .unwrap()
        .exponent;
        // Either direction is parameter-dependent, but both must sit in the
        // same physical band above β.
        assert!(gated > 1.3 && gated < 4.0, "gated crossover {gated}");
        assert!(
            ungated > 1.3 && ungated < 4.0,
            "ungated crossover {ungated}"
        );
    }

    #[test]
    #[should_panic(expected = "minimum depth")]
    fn min_depth_validated() {
        let _ = crossover_exponent(&model_with(PowerParams::paper()), 1.0);
    }
}
