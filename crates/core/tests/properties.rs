//! Property-based tests of the analytic theory over random parameter
//! space: invariants the paper derives must hold for *every* physical
//! parameterisation, not just the defaults.

use pipedepth_core::{
    analytic_optimum, cubic_optimum, metric_slope, numeric_optimum, ClockGating, MetricExponent,
    PipelineModel, PowerParams, TechParams, WorkloadParams,
};
use proptest::prelude::*;

fn arb_tech() -> impl Strategy<Value = TechParams> {
    (60.0f64..300.0, 1.0f64..6.0).prop_map(|(tp, to)| TechParams::new(tp, to))
}

fn arb_workload() -> impl Strategy<Value = WorkloadParams> {
    (1.0f64..4.0, 0.05f64..0.9, 0.02f64..0.5).prop_map(|(a, g, h)| WorkloadParams::new(a, g, h))
}

fn arb_power() -> impl Strategy<Value = PowerParams> {
    (0.0f64..0.7, 1.05f64..1.9).prop_map(|(leak, beta)| {
        PowerParams::with_leakage_fraction(leak, &TechParams::paper(), 10.0).with_latch_growth(beta)
    })
}

fn arb_gating() -> impl Strategy<Value = ClockGating> {
    prop_oneof![
        Just(ClockGating::None),
        (0.1f64..1.0).prop_map(ClockGating::Partial),
        (0.05f64..2.0).prop_map(|kappa| ClockGating::Complete { kappa }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn power_optimum_never_exceeds_perf_optimum(
        tech in arb_tech(), w in arb_workload(), p in arb_power(), g in arb_gating()
    ) {
        let model = PipelineModel::new(tech, w, p.with_gating(g));
        let perf = model.perf().optimum_depth();
        if let Some(d) = numeric_optimum(&model, MetricExponent::BIPS3_PER_WATT).depth() {
            prop_assert!(d <= perf * 1.001, "power-aware {d} vs perf-only {perf}");
        }
    }

    #[test]
    fn optimum_monotone_in_metric_exponent(
        tech in arb_tech(), w in arb_workload(), p in arb_power()
    ) {
        use pipedepth_core::Optimum;
        let model = PipelineModel::new(tech, w, p);
        let mut last = 1.0f64;
        for m in [2.0, 3.0, 4.0, 6.0] {
            let d = match numeric_optimum(&model, MetricExponent::new(m)) {
                Optimum::Pipelined { depth, .. } => depth,
                Optimum::Unpipelined { .. } => 1.0,
                // Still rising at the search boundary: effectively +∞.
                Optimum::DeeperThanRange { .. } => f64::INFINITY,
            };
            prop_assert!(d + 1e-6 >= last, "m={m}: {d} < previous {last}");
            last = d;
        }
    }

    #[test]
    fn analytic_matches_numeric_for_polynomial_models(
        tech in arb_tech(), w in arb_workload(), p in arb_power()
    ) {
        // Non-gated models have the exact cubic; it must agree with direct
        // maximisation whenever an interior optimum exists.
        let model = PipelineModel::new(tech, w, p);
        let m3 = MetricExponent::BIPS3_PER_WATT;
        let numeric = numeric_optimum(&model, m3).depth();
        let analytic = analytic_optimum(&model, m3).depth();
        match (numeric, analytic) {
            (Some(n), Some(a)) => {
                prop_assert!((n - a).abs() < 1e-3 * n.max(1.0), "numeric {n} vs cubic {a}")
            }
            // Boundary cases may disagree about "barely interior" optima
            // below ~1.5 stages; anything deeper must agree.
            (Some(n), None) => prop_assert!(n < 2.0, "numeric found {n}, cubic found none"),
            (None, Some(a)) => prop_assert!(a < 2.0, "cubic found {a}, numeric found none"),
            (None, None) => {}
        }
    }

    #[test]
    fn cubic_root_annihilates_the_slope(
        tech in arb_tech(), w in arb_workload(), p in arb_power()
    ) {
        let model = PipelineModel::new(tech, w, p);
        let m3 = MetricExponent::BIPS3_PER_WATT;
        if let Some(root) = cubic_optimum(&model, m3) {
            if root > 0.5 {
                let slope = metric_slope(&model, root, m3);
                prop_assert!(slope.abs() < 1e-6, "slope {slope} at root {root}");
            }
        }
    }

    #[test]
    fn metric_positive_and_finite_everywhere(
        tech in arb_tech(), w in arb_workload(), p in arb_power(), g in arb_gating(),
        depth in 1.0f64..40.0, m in 0.5f64..8.0
    ) {
        let model = PipelineModel::new(tech, w, p.with_gating(g));
        let v = model.metric(depth, MetricExponent::new(m));
        prop_assert!(v.is_finite() && v > 0.0, "metric {v}");
    }

    #[test]
    fn leakage_growth_never_shrinks_gated_optimum(
        tech in arb_tech(), w in arb_workload(), kappa in 0.05f64..1.5
    ) {
        let optimum_at = |leak: f64| {
            let p = PowerParams::with_leakage_fraction(leak, &tech, 10.0)
                .with_gating(ClockGating::Complete { kappa });
            numeric_optimum(&PipelineModel::new(tech, w, p), MetricExponent::BIPS3_PER_WATT)
                .depth()
                .unwrap_or(1.0)
        };
        let lo = optimum_at(0.05);
        let hi = optimum_at(0.6);
        prop_assert!(hi + 1e-6 >= lo, "leakage shrank the optimum: {lo} -> {hi}");
    }

    #[test]
    fn more_hazards_mean_shallower_perf_optimum(
        tech in arb_tech(), a in 1.0f64..4.0, g in 0.05f64..0.45, h in 0.02f64..0.25
    ) {
        let base = PipelineModel::new(tech, WorkloadParams::new(a, g, h), PowerParams::paper());
        let hazy = PipelineModel::new(tech, WorkloadParams::new(a, g, 2.0 * h), PowerParams::paper());
        prop_assert!(hazy.perf().optimum_depth() < base.perf().optimum_depth());
    }

    #[test]
    fn tau_decomposition_holds(
        tech in arb_tech(), w in arb_workload(), depth in 1.0f64..40.0
    ) {
        let model = PipelineModel::new(tech, w, PowerParams::paper());
        let perf = model.perf();
        let total = perf.time_per_instruction(depth);
        prop_assert!((total - perf.busy_time(depth) - perf.hazard_time(depth)).abs() < 1e-9 * total);
        prop_assert!(total > 0.0);
    }
}
