//! Cycle-by-cycle power model for the `pipedepth` workspace.
//!
//! The paper's power methodology (Section 3): power is latch-dominated;
//! each pipelined unit's latch count grows as `(unit depth)^1.3`, giving an
//! overall `p^1.1` scaling; merged units share a cycle and are charged the
//! max of their latch complements; and two accounting modes — complete
//! fine-grained clock gating driven by per-unit occupancy, and no gating
//! where every latch clocks every cycle.
//!
//! * [`latches`] — the latch-count model (reproduces the paper's Fig. 3);
//! * [`model`] — power measurement over a [`pipedepth_sim::SimReport`] and
//!   the `BIPS^m/W` metric evaluation.
//!
//! # Examples
//!
//! ```
//! use pipedepth_power::{metric, Gating, PowerConfig};
//! use pipedepth_sim::{Engine, SimConfig};
//! use pipedepth_trace::{TraceGenerator, WorkloadModel};
//!
//! let mut engine = Engine::new(SimConfig::paper(7));
//! let mut gen = TraceGenerator::new(WorkloadModel::modern_like(), 5);
//! let sim = engine.run(&mut gen, 10_000);
//! let bips3_per_watt = metric(&sim, &PowerConfig::default(), 3.0);
//! assert!(bips3_per_watt > 0.0);
//! ```
pub mod latches;
pub mod model;

pub use latches::LatchModel;
pub use model::{extract_kappa, measure, metric, Gating, PowerConfig, PowerReport};
