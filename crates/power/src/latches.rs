//! The latch model: how many latches each unit carries at each depth.
//!
//! Following the paper's Section 3: each individually pipelined unit's latch
//! count scales as `(unit depth)^β_unit` with `β_unit = 1.3`, chosen so that
//! the *overall* processor latch count scales roughly as `p^1.1` (their
//! Fig. 3) once the depth-independent latch pool (architected state, queue
//! entries, control) is included. When units are merged onto one cycle the
//! intervening latches are eliminated and the shared cycle is charged the
//! *greater* of the merged units' latch complements — the paper's max rule.

use pipedepth_sim::{StagePlan, Unit};

/// Latch-model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatchModel {
    /// Per-unit latch-growth exponent (the paper's observed 1.3).
    pub unit_growth: f64,
    /// Depth-independent latches: architected registers, queue payload,
    /// control state.
    pub fixed_latches: f64,
}

impl LatchModel {
    /// The paper's latch model: `β_unit = 1.3` with a fixed pool sized so
    /// the overall count fits `p^1.1` over the simulated 2–25 range.
    pub fn paper() -> Self {
        LatchModel {
            unit_growth: 1.3,
            fixed_latches: 45.0,
        }
    }

    /// Creates a latch model.
    ///
    /// # Panics
    ///
    /// Panics if `unit_growth` is not positive or `fixed_latches` negative.
    pub fn new(unit_growth: f64, fixed_latches: f64) -> Self {
        assert!(unit_growth > 0.0, "unit growth exponent must be positive");
        assert!(fixed_latches >= 0.0, "fixed latches cannot be negative");
        LatchModel {
            unit_growth,
            fixed_latches,
        }
    }

    /// Base (single-stage) latch complement of a unit — its relative width
    /// in state bits, including the superscalar slot width.
    pub fn base_latches(unit: Unit) -> f64 {
        match unit {
            Unit::Decode => 120.0,
            Unit::Agen => 40.0,
            Unit::Cache => 80.0,
            Unit::Execute => 100.0,
            Unit::Complete => 30.0,
        }
    }

    /// Latches of one unit at its planned stage count, honouring the merge
    /// (max) rule: a zero-stage unit contributes no latches of its own; its
    /// host cycle is charged separately via [`LatchModel::merged_extra`].
    pub fn unit_latches(&self, unit: Unit, plan: &StagePlan) -> f64 {
        let n = plan.stages(unit);
        if n == 0 {
            return 0.0;
        }
        Self::base_latches(unit) * (n as f64).powf(self.unit_growth)
    }

    /// Extra latches charged for units merged into neighbouring cycles: for
    /// each merged unit, the shared cycle's latch complement is the *max*
    /// of the host's per-stage latches and the merged unit's base — so the
    /// increment is `max(0, merged_base − host_per_stage)`.
    pub fn merged_extra(&self, plan: &StagePlan) -> f64 {
        let mut extra = 0.0;
        for unit in plan.merged_units() {
            let host = self.merge_host(unit, plan);
            let host_per_stage = self.unit_latches(host, plan) / plan.stages(host).max(1) as f64;
            extra += (Self::base_latches(unit) - host_per_stage).max(0.0);
        }
        extra
    }

    /// The unit whose cycle hosts a merged (zero-stage) unit: the nearest
    /// following scaled unit with stages, else the nearest preceding one.
    ///
    /// Infallible by construction: a unit outside [`Unit::SCALED`] hosts
    /// itself, and [`StagePlan`] guarantees Decode always has stages, so
    /// the backward scan cannot come up empty.
    fn merge_host(&self, unit: Unit, plan: &StagePlan) -> Unit {
        let order = Unit::SCALED;
        let Some(pos) = order.iter().position(|&u| u == unit) else {
            return unit;
        };
        for &u in &order[pos + 1..] {
            if plan.stages(u) > 0 {
                return u;
            }
        }
        for &u in order[..pos].iter().rev() {
            if plan.stages(u) > 0 {
                return u;
            }
        }
        Unit::Decode
    }

    /// Total latch count of the machine at a stage plan: scaled units,
    /// merge extras, the fixed back end and the depth-independent pool.
    pub fn total_latches(&self, plan: &StagePlan) -> f64 {
        let scaled: f64 = Unit::SCALED
            .iter()
            .map(|&u| self.unit_latches(u, plan))
            .sum();
        let complete = Self::base_latches(Unit::Complete) * plan.complete as f64;
        scaled + self.merged_extra(plan) + complete + self.fixed_latches
    }

    /// Per-stage latch complement of a unit (0 for merged units).
    pub fn per_stage_latches(&self, unit: Unit, plan: &StagePlan) -> f64 {
        let n = plan.stages(unit);
        if n == 0 {
            0.0
        } else {
            self.unit_latches(unit, plan) / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_math::fit::power_law_fit;

    #[test]
    fn unit_latches_scale_superlinearly() {
        let m = LatchModel::paper();
        let mut a = StagePlan::try_for_depth(8).expect("valid depth");
        let mut b = StagePlan::try_for_depth(8).expect("valid depth");
        a.decode = 2;
        b.decode = 4;
        let r = m.unit_latches(Unit::Decode, &b) / m.unit_latches(Unit::Decode, &a);
        // Doubling a unit's stages multiplies its latches by 2^1.3 ≈ 2.46.
        assert!((r - 2f64.powf(1.3)).abs() < 1e-9, "ratio {r}");
    }

    #[test]
    fn overall_growth_fits_paper_exponent() {
        // The paper's Fig. 3: unit exponent 1.3 yields overall ≈ p^1.1.
        let m = LatchModel::paper();
        let depths: Vec<f64> = (2..=25).map(|d| d as f64).collect();
        let counts: Vec<f64> = (2..=25)
            .map(|d| m.total_latches(&StagePlan::try_for_depth(d).expect("valid depth")))
            .collect();
        let fit = power_law_fit(&depths, &counts).unwrap();
        assert!(
            (fit.exponent - 1.1).abs() < 0.08,
            "overall latch growth exponent {} (want ≈1.1)",
            fit.exponent
        );
        assert!(
            fit.r_squared > 0.98,
            "power law fit quality {}",
            fit.r_squared
        );
    }

    #[test]
    fn total_latches_monotone_in_depth() {
        let m = LatchModel::paper();
        let mut prev = 0.0;
        for d in 2..=30 {
            let t = m.total_latches(&StagePlan::try_for_depth(d).expect("valid depth"));
            assert!(t > prev, "latches not monotone at depth {d}");
            prev = t;
        }
    }

    #[test]
    fn merged_units_use_max_rule() {
        let m = LatchModel::paper();
        let plan = StagePlan::try_for_depth(2).expect("valid depth"); // merges agen and cache
        assert!(!plan.merged_units().is_empty());
        let extra = m.merged_extra(&plan);
        // Each merged unit adds at most its own base latches.
        let bound: f64 = plan
            .merged_units()
            .iter()
            .map(|&u| LatchModel::base_latches(u))
            .sum();
        assert!(
            extra >= 0.0 && extra <= bound,
            "extra {extra} bound {bound}"
        );
    }

    #[test]
    fn per_stage_latches_of_merged_unit_is_zero() {
        let m = LatchModel::paper();
        let plan = StagePlan::try_for_depth(2).expect("valid depth");
        for u in plan.merged_units() {
            assert_eq!(m.per_stage_latches(u, &plan), 0.0);
        }
    }

    #[test]
    fn fixed_pool_flattens_growth() {
        let steep = LatchModel::new(1.3, 0.0);
        let flat = LatchModel::new(1.3, 5_000.0);
        let depths: Vec<f64> = (2..=25).map(|d| d as f64).collect();
        let fit_of = |m: &LatchModel| {
            let counts: Vec<f64> = (2..=25)
                .map(|d| m.total_latches(&StagePlan::try_for_depth(d).expect("valid depth")))
                .collect();
            power_law_fit(&depths, &counts).unwrap().exponent
        };
        assert!(fit_of(&flat) < fit_of(&steep));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_growth_rejected() {
        let _ = LatchModel::new(0.0, 10.0);
    }
}
