//! Cycle-level power accounting over simulation results.
//!
//! Two accounting modes mirror the paper's Section 3:
//!
//! * **non-clock-gated** — every latch switches every cycle: dynamic power
//!   is `E_d · N_latches · f_s`;
//! * **clock-gated** (complete, fine-grained) — only latches whose stage
//!   held an instruction that cycle switch: dynamic energy is accumulated
//!   from the engine's per-unit occupancy counts.
//!
//! Leakage burns in every latch all the time in both modes.

use crate::latches::LatchModel;
use pipedepth_sim::{SimReport, Unit};

/// Fraction of the depth-independent latch pool (architected state, queue
/// payload) written per retired instruction under clock gating.
const FIXED_ACTIVITY: f64 = 0.2;

/// Gating mode of the power accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gating {
    /// All latches clock every cycle.
    Ungated,
    /// A fixed fraction of the latches clocks every cycle (coarse-grained
    /// gating; mirrors the theory's `ClockGating::Partial`).
    ///
    /// The fraction must lie in `(0, 1]`; 1.0 is equivalent to
    /// [`Gating::Ungated`].
    Partial(f64),
    /// Fine-grained clock gating: latches switch only with occupancy.
    Gated,
}

/// Power-accounting parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Latch model (unit growth and fixed pool).
    pub latches: LatchModel,
    /// Dynamic switching energy per latch per clock (arbitrary units).
    pub dynamic_energy: f64,
    /// Leakage power per latch (same unit system, per FO4).
    pub leakage_power: f64,
    /// Gating mode.
    pub gating: Gating,
}

impl PowerConfig {
    /// The paper's operating point: β_unit = 1.3 latch model and leakage
    /// sized at `fraction` of total non-gated power at the reference depth
    /// (the paper assumes 15%).
    ///
    /// # Panics
    ///
    /// Panics unless `fraction ∈ [0, 1)` and `ref_depth ≥ 2`.
    pub fn paper(gating: Gating, leakage_fraction: f64, ref_depth: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&leakage_fraction),
            "leakage fraction must be in [0, 1)"
        );
        assert!(ref_depth >= 2, "reference depth must be at least 2");
        let dynamic_energy = 1.0;
        // Non-gated dynamic power per latch is E_d · f_s(ref).
        let t_s = 2.5 + 140.0 / ref_depth as f64;
        let f_s = 1.0 / t_s;
        let leakage_power = leakage_fraction / (1.0 - leakage_fraction) * dynamic_energy * f_s;
        PowerConfig {
            latches: LatchModel::paper(),
            dynamic_energy,
            leakage_power,
            gating,
        }
    }
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self::paper(Gating::Gated, 0.15, 10)
    }
}

/// Power measured over one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Dynamic power (energy per FO4).
    pub dynamic: f64,
    /// Leakage power (energy per FO4).
    pub leakage: f64,
    /// Total latch count of the simulated configuration.
    pub latches: f64,
    /// Total simulated time in FO4.
    pub time_fo4: f64,
}

impl PowerReport {
    /// Total power.
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }

    /// Leakage share of total power.
    pub fn leakage_share(&self) -> f64 {
        self.leakage / self.total()
    }
}

/// Computes the power of a simulation run under a power configuration.
///
/// # Panics
///
/// Panics if the report covers zero cycles (no time to average over).
///
/// # Examples
///
/// ```
/// use pipedepth_power::{measure, Gating, PowerConfig};
/// use pipedepth_sim::{Engine, SimConfig};
/// use pipedepth_trace::{TraceGenerator, WorkloadModel};
///
/// let mut engine = Engine::new(SimConfig::paper(8));
/// let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 1);
/// let sim = engine.run(&mut gen, 5_000);
/// let gated = measure(&sim, &PowerConfig::paper(Gating::Gated, 0.15, 10));
/// let ungated = measure(&sim, &PowerConfig::paper(Gating::Ungated, 0.15, 10));
/// assert!(gated.total() < ungated.total(), "gating saves power");
/// ```
pub fn measure(sim: &SimReport, config: &PowerConfig) -> PowerReport {
    assert!(sim.cycles > 0, "cannot measure power over zero cycles");
    let plan = sim.plan;
    let t_s = sim.config.cycle_time_fo4();
    let time_fo4 = sim.cycles as f64 * t_s;
    let latches = config.latches.total_latches(&plan);

    let dynamic = match config.gating {
        Gating::Ungated => {
            // Every latch switches every cycle.
            latches * config.dynamic_energy / t_s
        }
        Gating::Partial(f_cg) => {
            assert!(
                f_cg > 0.0 && f_cg <= 1.0,
                "partial gating fraction must be in (0, 1]"
            );
            f_cg * latches * config.dynamic_energy / t_s
        }
        Gating::Gated => {
            // Occupancy-driven switching: each instruction-stage occupancy
            // clocks that stage's latch complement once. Merged-unit extras
            // switch per instruction; of the fixed pool (architected state,
            // queues) only a fraction is written per instruction.
            // A stage's latch complement is banked across the superscalar
            // width; one instruction-occupancy clocks one slot's share.
            let slot_share = 1.0 / sim.config.width as f64;
            let mut energy = 0.0;
            for unit in Unit::ALL {
                let per_stage = config.latches.per_stage_latches(unit, &plan);
                energy += sim.unit_activity(unit) as f64 * per_stage * slot_share;
            }
            let per_instr_fixed =
                config.latches.fixed_latches * FIXED_ACTIVITY + config.latches.merged_extra(&plan);
            energy += sim.instructions as f64 * per_instr_fixed;
            energy * config.dynamic_energy / time_fo4
        }
    };
    let leakage = latches * config.leakage_power;
    PowerReport {
        dynamic,
        leakage,
        latches,
        time_fo4,
    }
}

/// The power/performance metric `BIPS^m/W` of a simulation under a power
/// configuration (arbitrary consistent units, exactly as the paper plots).
pub fn metric(sim: &SimReport, config: &PowerConfig, m: f64) -> f64 {
    assert!(m > 0.0, "metric exponent must be positive");
    let power = measure(sim, config);
    sim.throughput().powf(m) / power.total()
}

/// The effective per-instruction switching constant κ implied by a gated
/// measurement: the paper's substitution `f_cg·f_s → κ·(T/N_I)⁻¹` holds
/// with `κ = gated switching rate per latch / throughput`.
pub fn extract_kappa(sim: &SimReport, config: &PowerConfig) -> f64 {
    let gated = measure(
        sim,
        &PowerConfig {
            gating: Gating::Gated,
            ..*config
        },
    );
    let per_latch_rate = gated.dynamic / (config.dynamic_energy * gated.latches);
    per_latch_rate / sim.throughput()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedepth_sim::{Engine, SimConfig};
    use pipedepth_trace::{TraceGenerator, WorkloadModel};

    fn sim(depth: u32) -> SimReport {
        let mut e = Engine::new(SimConfig::paper(depth));
        let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 11);
        e.run(&mut gen, 20_000)
    }

    #[test]
    fn gated_below_ungated_everywhere() {
        for depth in [2, 8, 16, 25] {
            let s = sim(depth);
            let g = measure(&s, &PowerConfig::paper(Gating::Gated, 0.15, 10));
            let u = measure(&s, &PowerConfig::paper(Gating::Ungated, 0.15, 10));
            assert!(g.dynamic < u.dynamic, "depth {depth}");
            assert_eq!(g.leakage, u.leakage, "leakage ignores gating");
        }
    }

    #[test]
    fn ungated_power_grows_with_depth() {
        let p: Vec<f64> = [4, 8, 16, 24]
            .iter()
            .map(|&d| measure(&sim(d), &PowerConfig::paper(Gating::Ungated, 0.15, 10)).total())
            .collect();
        for w in p.windows(2) {
            assert!(w[1] > w[0], "power not monotone: {p:?}");
        }
    }

    #[test]
    fn leakage_fraction_matches_at_reference() {
        let s = sim(10);
        let r = measure(&s, &PowerConfig::paper(Gating::Ungated, 0.15, 10));
        assert!(
            (r.leakage_share() - 0.15).abs() < 0.01,
            "share {}",
            r.leakage_share()
        );
    }

    #[test]
    fn partial_gating_interpolates() {
        let s = sim(10);
        let full = measure(&s, &PowerConfig::paper(Gating::Ungated, 0.15, 10));
        let half = measure(&s, &PowerConfig::paper(Gating::Partial(0.5), 0.15, 10));
        let one = measure(&s, &PowerConfig::paper(Gating::Partial(1.0), 0.15, 10));
        assert!((half.dynamic - 0.5 * full.dynamic).abs() < 1e-9 * full.dynamic);
        assert!((one.dynamic - full.dynamic).abs() < 1e-12 * full.dynamic);
        assert_eq!(half.leakage, full.leakage);
    }

    #[test]
    #[should_panic(expected = "partial gating fraction")]
    fn bad_partial_fraction_rejected() {
        let s = sim(8);
        let _ = measure(&s, &PowerConfig::paper(Gating::Partial(0.0), 0.15, 10));
    }

    #[test]
    fn zero_leakage_config() {
        let s = sim(8);
        let r = measure(&s, &PowerConfig::paper(Gating::Gated, 0.0, 10));
        assert_eq!(r.leakage, 0.0);
    }

    #[test]
    fn metric_ordering_by_exponent_at_depth() {
        // For a fixed design, the metric value itself is monotone in m only
        // through throughput scale; just verify positivity and consistency.
        let s = sim(8);
        let cfg = PowerConfig::default();
        let m1 = metric(&s, &cfg, 1.0);
        let m3 = metric(&s, &cfg, 3.0);
        assert!(m1 > 0.0 && m3 > 0.0);
        let power = measure(&s, &cfg).total();
        assert!((m3 / m1 - s.throughput().powi(2)).abs() < 1e-9 * (m3 / m1));
        let _ = power;
    }

    #[test]
    fn kappa_is_order_one_and_stable() {
        let cfg = PowerConfig::default();
        let k8 = extract_kappa(&sim(8), &cfg);
        let k16 = extract_kappa(&sim(16), &cfg);
        assert!(k8 > 0.05 && k8 < 20.0, "kappa {k8}");
        // κ is meant to be a workload constant, roughly depth-independent.
        assert!(
            (k8 - k16).abs() < 0.5 * k8.max(k16),
            "kappa varies too much: {k8} vs {k16}"
        );
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn empty_sim_rejected() {
        let e = Engine::new(SimConfig::paper(8));
        let r = e.report();
        let _ = measure(&r, &PowerConfig::default());
    }
}
