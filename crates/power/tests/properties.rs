//! Property-based tests for the power model.

use pipedepth_power::{measure, metric, Gating, LatchModel, PowerConfig};
use pipedepth_sim::{Engine, SimConfig, StagePlan};
use pipedepth_trace::{TraceGenerator, WorkloadModel};
use proptest::prelude::*;

fn arb_depth() -> impl Strategy<Value = u32> {
    2u32..=25
}

fn arb_model() -> impl Strategy<Value = WorkloadModel> {
    prop::sample::select(vec![
        WorkloadModel::legacy_like(),
        WorkloadModel::spec_int_like(),
        WorkloadModel::modern_like(),
        WorkloadModel::spec_fp_like(),
    ])
}

fn sim(model: WorkloadModel, seed: u64, depth: u32) -> pipedepth_sim::SimReport {
    let mut e = Engine::new(SimConfig::paper(depth));
    let mut gen = TraceGenerator::new(model, seed);
    e.run(&mut gen, 4000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gated_never_exceeds_ungated(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let s = sim(model, seed, depth);
        let g = measure(&s, &PowerConfig::paper(Gating::Gated, 0.15, 10));
        let u = measure(&s, &PowerConfig::paper(Gating::Ungated, 0.15, 10));
        prop_assert!(g.dynamic <= u.dynamic + 1e-9, "gated {} vs ungated {}", g.dynamic, u.dynamic);
        prop_assert!((g.leakage - u.leakage).abs() < 1e-12);
    }

    #[test]
    fn power_components_positive(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        let s = sim(model, seed, depth);
        for gating in [Gating::Gated, Gating::Ungated] {
            let r = measure(&s, &PowerConfig::paper(gating, 0.15, 10));
            prop_assert!(r.dynamic > 0.0);
            prop_assert!(r.leakage > 0.0);
            prop_assert!(r.leakage_share() > 0.0 && r.leakage_share() < 1.0);
        }
    }

    #[test]
    fn metric_scales_with_throughput_power(model in arb_model(), seed in any::<u64>(), depth in arb_depth()) {
        // metric(m+1) = metric(m) × throughput, exactly.
        let s = sim(model, seed, depth);
        let cfg = PowerConfig::default();
        let m1 = metric(&s, &cfg, 1.0);
        let m2 = metric(&s, &cfg, 2.0);
        let ratio = m2 / m1;
        prop_assert!((ratio - s.throughput()).abs() < 1e-9 * ratio.abs().max(1e-30));
    }

    #[test]
    fn latch_totals_monotone_and_positive(depth in 2u32..25) {
        let m = LatchModel::paper();
        let a = m.total_latches(&StagePlan::try_for_depth(depth).expect("valid depth"));
        let b = m.total_latches(&StagePlan::try_for_depth(depth + 1).expect("valid depth"));
        prop_assert!(a > 0.0);
        prop_assert!(b > a);
    }

    #[test]
    fn leakage_fraction_calibration_holds(frac in 0.01f64..0.9, ref_depth in 2u32..25) {
        let cfg = PowerConfig::paper(Gating::Ungated, frac, ref_depth);
        // At the reference depth, an always-on machine's leakage share is
        // exactly the calibrated fraction (per latch, so for any workload).
        let s = sim(WorkloadModel::spec_int_like(), 1, ref_depth);
        let r = measure(&s, &cfg);
        prop_assert!((r.leakage_share() - frac).abs() < 1e-9, "share {}", r.leakage_share());
    }

    #[test]
    fn ungated_dynamic_power_is_workload_independent(seed in any::<u64>(), depth in arb_depth()) {
        // Non-gated dynamic power depends only on the configuration.
        let a = measure(&sim(WorkloadModel::spec_int_like(), seed, depth),
                        &PowerConfig::paper(Gating::Ungated, 0.15, 10));
        let b = measure(&sim(WorkloadModel::legacy_like(), seed, depth),
                        &PowerConfig::paper(Gating::Ungated, 0.15, 10));
        prop_assert!((a.dynamic - b.dynamic).abs() < 1e-9 * a.dynamic);
    }
}
