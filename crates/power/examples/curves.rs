use pipedepth_power::*;
use pipedepth_sim::*;
use pipedepth_trace::*;
fn main() {
    let warm = 30_000;
    let n = 60_000;
    for (name, m) in [
        ("specint", WorkloadModel::spec_int_like()),
        ("legacy", WorkloadModel::legacy_like()),
        ("modern", WorkloadModel::modern_like()),
        ("fp", WorkloadModel::spec_fp_like()),
    ] {
        let mut bips_best = (0u32, 0.0f64);
        let mut m3g = (0u32, 0.0f64);
        let mut m3u = (0u32, 0.0f64);
        let mut curve = String::new();
        let mut info = String::new();
        for depth in 2..=25u32 {
            let mut e = Engine::new(SimConfig::paper(depth));
            let mut g = TraceGenerator::new(m, 42);
            e.warm_up(&mut g, warm);
            let r = e.run(&mut g, n);
            let b = r.throughput();
            let g3 = metric(&r, &PowerConfig::paper(Gating::Gated, 0.15, 10), 3.0);
            let u3 = metric(&r, &PowerConfig::paper(Gating::Ungated, 0.15, 10), 3.0);
            if b > bips_best.1 {
                bips_best = (depth, b);
            }
            if g3 > m3g.1 {
                m3g = (depth, g3);
            }
            if u3 > m3u.1 {
                m3u = (depth, u3);
            }
            if depth % 2 == 0 {
                curve.push_str(&format!("{}:{:.2e} ", depth, g3));
            }
            if depth == 12 {
                info = format!(
                    "cpi={:.2} tau={:.1} mispr={:.3} tmem={:.1} K={:.3}",
                    r.cpi(),
                    r.time_per_instruction_fo4(),
                    r.mispredict_rate(),
                    r.memory_time_per_instruction_fo4(),
                    r.hazard_product()
                );
            }
        }
        println!(
            "{name}: BIPS@{} m3gated@{} m3ungated@{} | {}",
            bips_best.0, m3g.0, m3u.0, info
        );
        println!("   {curve}");
    }
}
