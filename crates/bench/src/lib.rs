//! Benchmark harness support for the `pipedepth` workspace.
//!
//! The Criterion benches in `benches/` regenerate every figure of the
//! paper (printing the measured rows next to the paper's reported values)
//! and measure the throughput of the simulator and theory substrates.

use pipedepth_experiments::sweep::RunConfig;

/// The reduced simulation sizing used inside timed benchmark loops, chosen
/// so a figure regeneration stays affordable per iteration while preserving
/// every qualitative result.
pub fn bench_config() -> RunConfig {
    RunConfig {
        warmup: 10_000,
        instructions: 20_000,
        depths: (2..=24).step_by(2).collect(),
        ..RunConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_light_but_covers_range() {
        let cfg = bench_config();
        assert!(cfg.instructions <= 20_000, "keep benches affordable");
        assert_eq!(cfg.depths.first(), Some(&2));
        assert!(*cfg.depths.last().unwrap() >= 20);
    }
}
