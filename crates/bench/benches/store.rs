//! Persistent-store micro-benchmarks: the cost of the disk tier's
//! moving parts, so BENCH_10.json can attribute warm-run speedups.
//!
//! Three layers are measured over realistic record shapes (simulated
//! `CellSpec`/`SimReport` cells and a 90k-instruction `AnnotatedTrace`):
//!
//! * `store_codec` — pure encode/decode of individual records (the
//!   flusher thread's CPU cost per record);
//! * `store_roundtrip` — publishing and loading whole namespaces
//!   through a scratch directory, checksums and the atomic
//!   temp-file-and-rename publish included;
//! * `store_warm_probe` — a warm-tier probe + promote against a loaded
//!   image, the per-cell overhead a warm run pays instead of simulating.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pipedepth_core::eval::TieredCache;
use pipedepth_experiments::{CellSpec, RunConfig, RunStore, Runner, SimCache};
use pipedepth_sim::{annotate, AnnotatedTrace, SimConfig, SimReport};
use pipedepth_store::{Blob, ByteReader, ByteWriter};
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::{TraceGenerator, WorkloadModel};
use pipedepth_workloads::representatives;
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

/// A scratch directory unique to this bench process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pipedepth-bench-store-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The bench-sized run configuration used to populate the store.
fn bench_config() -> RunConfig {
    RunConfig {
        warmup: 2_000,
        instructions: 4_000,
        depths: vec![4, 8, 12, 16],
        ..RunConfig::default()
    }
}

/// Simulated cells (spec, report) for the representative workloads over
/// a small depth grid — the record population a quick run publishes.
fn simulated_cells() -> Vec<(CellSpec, Arc<SimReport>)> {
    let runner = Runner::serial();
    runner.sweep_all(&representatives(), &bench_config());
    runner.export_reports()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_codec");
    let cells = simulated_cells();
    group.throughput(Throughput::Elements(cells.len() as u64));
    group.bench_function("report_records_encode_decode", |b| {
        b.iter(|| {
            for (spec, report) in &cells {
                let mut w = ByteWriter::new();
                spec.encode(&mut w);
                report.encode(&mut w);
                let bytes = w.into_bytes();
                let mut r = ByteReader::new(&bytes);
                let spec2 = CellSpec::decode(&mut r).expect("spec decodes");
                let report2 = SimReport::decode(&mut r).expect("report decodes");
                black_box((spec2, report2));
            }
        })
    });

    const N: usize = 90_000;
    let sim = SimConfig::paper(10);
    let trace = TraceGenerator::new(WorkloadModel::spec_int_like(), 3).take_vec(N);
    let notes = annotate(&trace, sim.cache, sim.predictor).expect("valid config");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("annotation_90k_encode_decode", |b| {
        b.iter(|| {
            let mut w = ByteWriter::new();
            notes.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            black_box(AnnotatedTrace::decode(&mut r).expect("annotation decodes"))
        })
    });
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_roundtrip");
    group.sample_size(10);
    let cells = simulated_cells();
    let cfg = bench_config();
    let telemetry = Telemetry::disabled();

    group.throughput(Throughput::Elements(cells.len() as u64));
    group.bench_function("publish_reports", |b| {
        let dir = scratch("publish");
        b.iter(|| {
            let store = RunStore::open(&dir, &cfg, &telemetry);
            store.flush_reports(cells.clone());
            black_box(store.finish())
        })
    });
    group.bench_function("load_reports", |b| {
        let dir = scratch("load");
        let store = RunStore::open(&dir, &cfg, &telemetry);
        store.flush_reports(cells.clone());
        store.finish();
        b.iter(|| {
            let mut store = RunStore::open(&dir, &cfg, &telemetry);
            let warm = store.load_reports();
            assert_eq!(warm.len(), cells.len());
            black_box(warm)
        })
    });
    group.finish();
}

fn bench_warm_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_warm_probe");
    let cells = simulated_cells();
    group.throughput(Throughput::Elements(cells.len() as u64));
    group.bench_function("probe_and_promote", |b| {
        b.iter(|| {
            // A fresh memory tier each iteration: every probe walks the
            // warm image and promotes — the warm run's startup regime.
            let warm = SimCache::new();
            for (spec, report) in &cells {
                warm.insert(spec.key(), *spec, Arc::clone(report));
            }
            let mut tiered: TieredCache<CellSpec, SimReport> = TieredCache::new();
            tiered.attach_warm(warm);
            for (spec, _) in &cells {
                black_box(tiered.get(spec.key(), spec).expect("warm hit"));
            }
            black_box(tiered.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_roundtrip, bench_warm_probe);
criterion_main!(benches);
