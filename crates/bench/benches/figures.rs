//! Figure-regeneration benches: one Criterion benchmark per table/figure of
//! the paper. Each bench prints the regenerated rows once (so running
//! `cargo bench` reproduces the paper's series alongside the timings) and
//! then measures the cost of recomputing the figure.

use criterion::{criterion_group, criterion_main, Criterion};
use pipedepth_bench::bench_config;
use pipedepth_experiments::figures::{fig1, fig3, fig4, fig5, fig6, fig7, fig8, fig9, headline};
use pipedepth_experiments::sweep::{sweep_all, sweep_workload, RunConfig, WorkloadCurve};
use pipedepth_workloads::{suite, suite_class, WorkloadClass};
use std::hint::black_box;
use std::sync::OnceLock;

/// Full-suite sweep shared by the distribution figures (computed once,
/// outside the timed loops).
fn shared_curves() -> &'static Vec<WorkloadCurve> {
    static CURVES: OnceLock<Vec<WorkloadCurve>> = OnceLock::new();
    CURVES.get_or_init(|| sweep_all(&suite(), &bench_config()))
}

fn spec_extraction() -> pipedepth_experiments::ExtractedParams {
    shared_curves()
        .iter()
        .find(|c| c.workload.class == WorkloadClass::SpecInt)
        .expect("SPECint present")
        .extracted
}

fn bench_fig1(c: &mut Criterion) {
    println!("{}", fig1::run());
    c.bench_function("fig1_optimality_quartic", |b| {
        b.iter(|| black_box(fig1::run()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    println!("{}", fig3::run());
    c.bench_function("fig3_latch_growth", |b| b.iter(|| black_box(fig3::run())));
}

fn bench_fig4(c: &mut Criterion) {
    let cfg = bench_config();
    println!("{}", fig4::run(&cfg));
    // Time a single panel's regeneration (sweep + theory fit).
    let w = suite_class(WorkloadClass::Modern)
        .into_iter()
        .next()
        .unwrap();
    c.bench_function("fig4_panel_modern", |b| {
        b.iter(|| {
            let curve = sweep_workload(&w, &cfg);
            black_box(fig4::panel_from_curve(&curve, &cfg))
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let cfg = bench_config();
    let w = suite_class(WorkloadClass::Modern)
        .into_iter()
        .next()
        .unwrap();
    let curve = sweep_workload(&w, &cfg);
    println!("{}", fig5::from_curve(&curve));
    c.bench_function("fig5_metric_comparison", |b| {
        b.iter(|| black_box(fig5::from_curve(&curve)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let curves = shared_curves();
    println!("{}", fig6::from_curves(curves));
    c.bench_function("fig6_distribution_from_sweeps", |b| {
        b.iter(|| black_box(fig6::from_curves(curves)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let curves = shared_curves();
    println!("{}", fig7::from_curves(curves));
    c.bench_function("fig7_class_distributions", |b| {
        b.iter(|| black_box(fig7::from_curves(curves)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = bench_config();
    let x = spec_extraction();
    println!("{}", fig8::run_with_params(&x, &cfg));
    c.bench_function("fig8_leakage_sweep", |b| {
        b.iter(|| black_box(fig8::run_with_params(&x, &cfg)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let cfg = bench_config();
    let x = spec_extraction();
    println!("{}", fig9::run_with_params(&x, &cfg));
    c.bench_function("fig9_latch_growth_sweep", |b| {
        b.iter(|| black_box(fig9::run_with_params(&x, &cfg)))
    });
}

fn bench_headline(c: &mut Criterion) {
    let cfg = bench_config();
    let curves = shared_curves();
    println!("{}", headline::from_curves(curves, &cfg));
    c.bench_function("headline_from_sweeps", |b| {
        b.iter(|| black_box(headline::from_curves(curves, &cfg)))
    });
}

fn bench_full_suite_sweep(c: &mut Criterion) {
    // The expensive part of the reproduction: 55 workloads × 12 depths.
    let cfg = RunConfig {
        depths: vec![4, 8, 16],
        ..bench_config()
    };
    let workloads = suite();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("suite_55x3_depths", |b| {
        b.iter(|| black_box(sweep_all(&workloads, &cfg)))
    });
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig3, bench_fig4, bench_fig5, bench_fig6,
              bench_fig7, bench_fig8, bench_fig9, bench_headline,
              bench_full_suite_sweep
}
criterion_main!(figures);
