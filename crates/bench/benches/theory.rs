//! Theory micro-benchmarks: the cost of the analytic machinery — metric
//! evaluation, closed-form vs numeric optima, and the polynomial root
//! finders that back them.

use criterion::{criterion_group, criterion_main, Criterion};
use pipedepth_core::{
    analytic_optimum, closed_form_optimum, crossover_exponent, numeric_optimum, paper_quartic,
    power_capped_design, ClockGating, MetricExponent, PipelineModel, PowerParams, TechParams,
    WorkloadParams,
};
use pipedepth_math::roots::{durand_kerner, real_roots, solve_cubic};
use pipedepth_math::Polynomial;
use std::hint::black_box;

fn ungated() -> PipelineModel {
    PipelineModel::new(
        TechParams::paper(),
        WorkloadParams::typical(),
        PowerParams::paper(),
    )
}

fn gated() -> PipelineModel {
    PipelineModel::new(
        TechParams::paper(),
        WorkloadParams::typical(),
        PowerParams::paper().with_gating(ClockGating::complete()),
    )
}

fn bench_metric_eval(c: &mut Criterion) {
    let model = gated();
    c.bench_function("metric_eval_single_depth", |b| {
        b.iter(|| black_box(model.metric(black_box(7.5), MetricExponent::BIPS3_PER_WATT)))
    });
}

fn bench_optima(c: &mut Criterion) {
    let u = ungated();
    let g = gated();
    let m3 = MetricExponent::BIPS3_PER_WATT;
    c.bench_function("optimum_numeric_gated", |b| {
        b.iter(|| black_box(numeric_optimum(&g, m3)))
    });
    c.bench_function("optimum_cubic_exact", |b| {
        b.iter(|| black_box(analytic_optimum(&u, m3)))
    });
    c.bench_function("optimum_closed_form_eq7", |b| {
        b.iter(|| black_box(closed_form_optimum(&u, m3)))
    });
}

fn bench_polynomials(c: &mut Criterion) {
    let u = ungated();
    let quartic = paper_quartic(&u, MetricExponent::BIPS3_PER_WATT).unwrap();
    c.bench_function("quartic_real_roots", |b| {
        b.iter(|| black_box(real_roots(black_box(&quartic))))
    });
    c.bench_function("durand_kerner_quartic", |b| {
        b.iter(|| black_box(durand_kerner(black_box(&quartic))))
    });
    c.bench_function("cubic_closed_form", |b| {
        b.iter(|| black_box(solve_cubic(1.0, -6.0, 11.0, -6.0)))
    });
    let poly = Polynomial::new(vec![1.0, -2.0, 0.5, 3.0, -0.25]);
    c.bench_function("poly_eval_horner", |b| {
        b.iter(|| black_box(poly.eval(black_box(3.7))))
    });
}

fn bench_extensions(c: &mut Criterion) {
    let g = gated();
    c.bench_function("crossover_exponent", |b| {
        b.iter(|| black_box(crossover_exponent(&g, 2.0)))
    });
    let budget = g.power().total_power(10.0);
    c.bench_function("power_capped_design", |b| {
        b.iter(|| black_box(power_capped_design(&g, black_box(budget))))
    });
}

criterion_group!(
    theory,
    bench_metric_eval,
    bench_optima,
    bench_polynomials,
    bench_extensions
);
criterion_main!(theory);
