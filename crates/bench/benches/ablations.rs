//! Ablation benches: regenerate the microarchitectural ablation table
//! (printing it once) and time each variant's sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipedepth_bench::bench_config;
use pipedepth_experiments::ablation::{self, Variant};
use pipedepth_sim::Engine;
use pipedepth_trace::TraceGenerator;
use pipedepth_workloads::{suite_class, WorkloadClass};
use std::hint::black_box;

fn bench_ablation_table(c: &mut Criterion) {
    let cfg = bench_config();
    let w = suite_class(WorkloadClass::Modern)
        .into_iter()
        .next()
        .expect("modern class populated");
    println!("{}", ablation::run(&w, &cfg));
    c.bench_function("ablation_full_table", |b| {
        b.iter(|| black_box(ablation::run(&w, &cfg)))
    });
}

fn bench_variant_engines(c: &mut Criterion) {
    let w = suite_class(WorkloadClass::Modern)
        .into_iter()
        .next()
        .expect("modern class populated");
    let mut group = c.benchmark_group("variant_engine");
    for variant in Variant::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{variant}")),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    let mut engine = Engine::new(variant.config(12));
                    let mut gen = TraceGenerator::new(w.model, w.trace_seed);
                    black_box(engine.run(&mut gen, 30_000))
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation_table, bench_variant_engines
}
criterion_main!(ablations);
