//! Simulator micro-benchmarks: engine throughput across depths and
//! workload classes, plus the cache and predictor substrates in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pipedepth_sim::cache::Hierarchy;
use pipedepth_sim::predictor::Gshare;
use pipedepth_sim::{
    annotate, replay, replay_sweep, CacheConfig, Engine, PredictorConfig, SimConfig,
};
use pipedepth_telemetry::Telemetry;
use pipedepth_trace::{TraceArena, TraceGenerator, WorkloadModel};
use std::hint::black_box;

fn bench_engine_depths(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    const N: u64 = 50_000;
    group.throughput(Throughput::Elements(N));
    for depth in [2u32, 8, 16, 25] {
        group.bench_with_input(BenchmarkId::new("specint", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut engine = Engine::new(SimConfig::paper(depth));
                let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 1);
                black_box(engine.run(&mut gen, N))
            })
        });
    }
    group.finish();
}

fn bench_engine_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_by_class");
    const N: u64 = 50_000;
    group.throughput(Throughput::Elements(N));
    for (name, model) in [
        ("legacy", WorkloadModel::legacy_like()),
        ("specint", WorkloadModel::spec_int_like()),
        ("modern", WorkloadModel::modern_like()),
        ("fp", WorkloadModel::spec_fp_like()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = Engine::new(SimConfig::paper(12));
                let mut gen = TraceGenerator::new(model, 1);
                black_box(engine.run(&mut gen, N))
            })
        });
    }
    group.finish();
}

/// Arena-vs-streaming: the same 50k-instruction simulation through the
/// slice hot path over a pre-materialised trace (the repro run's steady
/// state: the stream is resident, only the engine runs) versus the
/// streaming path that regenerates the trace inline. The gap is the
/// per-cell cost the arena removes times the slice path's win.
fn bench_engine_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_paths");
    const N: u64 = 50_000;
    group.throughput(Throughput::Elements(N));
    let arena = TraceArena::new();
    let trace = arena.get_or_generate(WorkloadModel::spec_int_like(), 1, N);
    for depth in [2u32, 8, 16, 25] {
        group.bench_with_input(
            BenchmarkId::new("slice_arena", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let mut engine = Engine::new(SimConfig::paper(depth));
                    black_box(engine.run_slice(black_box(&trace), N))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streaming_regen", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let mut engine = Engine::new(SimConfig::paper(depth));
                    let mut gen = TraceGenerator::new(WorkloadModel::spec_int_like(), 1);
                    black_box(engine.run(&mut gen, N))
                })
            },
        );
    }
    group.finish();
}

/// Cost of materialising a stream into the arena (the once-per-workload
/// price the arena amortises) versus looking a resident one up.
fn bench_trace_materialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_materialization");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("arena_fill", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            // A fresh seed each iteration forces a real materialisation.
            seed += 1;
            let arena = TraceArena::new();
            black_box(arena.get_or_generate(WorkloadModel::modern_like(), seed, N))
        })
    });
    group.bench_function("arena_lookup", |b| {
        let arena = TraceArena::new();
        arena.get_or_generate(WorkloadModel::modern_like(), 7, N);
        b.iter(|| black_box(arena.get_or_generate(WorkloadModel::modern_like(), 7, N)))
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    const N: usize = 100_000;
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("modern", |b| {
        b.iter(|| {
            let mut gen = TraceGenerator::new(WorkloadModel::modern_like(), 7);
            black_box(gen.take_vec(N))
        })
    });
    group.finish();
}

/// Annotate-once vs. a full engine pass, and the replay kernel against
/// the engine at one depth: the three costs whose ratio justifies the
/// sweep kernel. `annotate` must sit well below one engine pass (it is
/// paid once per stream), and `replay` below the engine (it is paid per
/// depth).
fn bench_annotate_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("annotate_vs_full");
    const N: u64 = 50_000;
    group.throughput(Throughput::Elements(N));
    let arena = TraceArena::new();
    let trace = arena.get_or_generate(WorkloadModel::spec_int_like(), 1, N);
    let config = SimConfig::paper(12);
    let notes = annotate(&trace, config.cache, config.predictor).expect("valid configuration");
    group.bench_function("annotate_once", |b| {
        b.iter(|| black_box(annotate(black_box(&trace), config.cache, config.predictor)))
    });
    group.bench_function("engine_full_pass", |b| {
        b.iter(|| {
            let mut engine = Engine::new(config);
            black_box(engine.run_slice(black_box(&trace), N))
        })
    });
    group.bench_function("replay_one_depth", |b| {
        b.iter(|| black_box(replay(black_box(&notes), config, 0, N)))
    });
    group.finish();
}

/// Batched multi-depth replay: one annotation walk advancing 1/4/8/16
/// depth lanes. Per-lane cost should fall as lanes amortise the
/// annotation walk, and even lanes = 1 must beat a full engine pass.
fn bench_sweep_kernel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_kernel_scaling");
    const N: u64 = 50_000;
    let arena = TraceArena::new();
    let trace = arena.get_or_generate(WorkloadModel::spec_int_like(), 1, N);
    let base = SimConfig::paper(2);
    let notes = annotate(&trace, base.cache, base.predictor).expect("valid configuration");
    for lanes in [1usize, 4, 8, 16] {
        // Per-lane throughput: N instructions advanced through each lane.
        group.throughput(Throughput::Elements(N * lanes as u64));
        let configs: Vec<SimConfig> = (0..lanes)
            .map(|i| SimConfig::paper(2 + (i as u32 * 23) / lanes.max(1) as u32))
            .collect();
        group.bench_with_input(BenchmarkId::new("lanes", lanes), &configs, |b, configs| {
            b.iter(|| {
                black_box(replay_sweep(
                    black_box(&notes),
                    configs,
                    0,
                    N,
                    &Telemetry::disabled(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    const N: u64 = 200_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("hierarchy_streaming", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(CacheConfig::default());
            let mut hits = 0u64;
            for i in 0..N {
                if h.access(black_box(i * 8 % (1 << 22))) == pipedepth_sim::cache::AccessResult::L1
                {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor");
    const N: u64 = 500_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("gshare_observe", |b| {
        b.iter(|| {
            let mut bp = Gshare::try_new(PredictorConfig::default()).expect("valid configuration");
            let mut x = 0x1234_5678u64;
            for _ in 0..N {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bp.observe(black_box(x & 0xFFF0), (x >> 60) & 3 != 0);
            }
            black_box(bp.miss_rate())
        })
    });
    group.finish();
}

criterion_group! {
    name = simulator;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_depths, bench_engine_classes, bench_engine_paths,
              bench_annotate_vs_full, bench_sweep_kernel_scaling,
              bench_trace_materialization, bench_trace_generation,
              bench_cache, bench_predictor
}
criterion_main!(simulator);
