//! Escape comments: `// analysis: allow(<rule>) — <reason>`.
//!
//! Collection and resolution are separate steps because cross-file rules
//! (lock-order, determinism-taint, …) produce violations *after* every
//! file has been scanned: the engine collects each file's escapes during
//! the parallel scan, then resolves them once all per-file and cross-file
//! violations for that file are known. Malformed or unknown-rule escapes
//! are violations in their own right and are never suppressible; unused
//! escapes are flagged so stale justifications cannot linger.

use crate::lexer::{Token, TokenKind};
use crate::rules::{is_known_rule, FileContext, Violation, ESCAPE_COMMENT};

/// A parsed, well-formed escape comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Escape {
    /// The rule the escape suppresses.
    pub(crate) rule: String,
    /// 1-based line of the comment.
    pub(crate) line: u32,
    /// Standalone comments (first token on their line) also cover the
    /// next code line — intervening comment or blank lines (a wrapped
    /// reason) do not break the association. Trailing comments cover
    /// only their own line.
    pub(crate) covers: Option<u32>,
}

/// Parses every escape comment of one file. Returns the well-formed
/// escapes plus `escape-comment` violations for malformed or
/// unknown-rule ones.
pub(crate) fn collect(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
) -> (Vec<Escape>, Vec<Violation>) {
    let code_lines: std::collections::BTreeSet<u32> = tokens
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.line)
        .collect();
    let mut escapes = Vec::new();
    let mut violations = Vec::new();
    for tok in tokens {
        if tok.kind != TokenKind::LineComment {
            continue;
        }
        let body = tok.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("analysis:") else {
            continue;
        };
        match parse_escape(rest) {
            Ok(rule) if !is_known_rule(&rule) => violations.push(Violation {
                rule: ESCAPE_COMMENT,
                file: ctx.rel_path.to_string(),
                line: tok.line,
                fingerprint: 0,
                message: format!("escape comment names unknown rule `{rule}`"),
            }),
            Ok(rule) => escapes.push(Escape {
                rule,
                line: tok.line,
                covers: if tok.first_on_line {
                    code_lines.range(tok.line + 1..).next().copied()
                } else {
                    None
                },
            }),
            Err(why) => violations.push(Violation {
                rule: ESCAPE_COMMENT,
                file: ctx.rel_path.to_string(),
                line: tok.line,
                fingerprint: 0,
                message: why,
            }),
        }
    }
    (escapes, violations)
}

/// Suppresses `raw` violations matched by an escape and appends an
/// `escape-comment` violation for every escape that suppressed nothing.
/// `rel_path` names the file the escapes came from.
pub(crate) fn resolve(rel_path: &str, escapes: &[Escape], raw: Vec<Violation>) -> Vec<Violation> {
    let mut used = vec![false; escapes.len()];
    let mut out = Vec::with_capacity(raw.len());
    for v in raw {
        let suppressed = escapes
            .iter()
            .enumerate()
            .find(|(_, e)| e.rule == v.rule && (e.line == v.line || e.covers == Some(v.line)));
        match suppressed {
            Some((idx, _)) => used[idx] = true,
            None => out.push(v),
        }
    }
    for (e, _) in escapes.iter().zip(&used).filter(|(_, &u)| !u) {
        out.push(Violation {
            rule: ESCAPE_COMMENT,
            file: rel_path.to_string(),
            line: e.line,
            fingerprint: 0,
            message: format!(
                "escape comment for `{}` suppresses nothing on its line (or the next \
                 code line); remove it",
                e.rule
            ),
        });
    }
    out
}

/// Parses the tail of an escape comment after `analysis:`. The grammar is
/// `allow(<rule>) — <reason>`; the separator may be `—`, `--` or `:`, and
/// the reason must be non-empty.
fn parse_escape(rest: &str) -> Result<String, String> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Err("escape comment must read `analysis: allow(<rule>) — <reason>`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("escape comment is missing `)` after the rule name".to_string());
    };
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    let reason = ["—", "--", ":"]
        .iter()
        .find_map(|sep| tail.strip_prefix(sep))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Err(format!(
            "escape for `{rule}` must give a reason: `analysis: allow({rule}) — <why>`"
        ));
    }
    Ok(rule)
}
