//! Ties discovery, lexing and the rules together into one workspace scan.

use crate::baseline::{Baseline, Ratchet};
use crate::lexer;
use crate::rules::{lint_tokens, FileContext, FileRole, Violation};
use crate::workspace::{self, SourceFile};
use crate::AnalysisError;
use std::path::Path;

/// The outcome of scanning a workspace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisReport {
    /// Every violation found, in file order.
    pub violations: Vec<Violation>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl AnalysisReport {
    /// Live violation counts in baseline form.
    pub fn to_baseline(&self) -> Baseline {
        Baseline::from_violations(&self.violations)
    }

    /// Ratchets this report against a recorded baseline.
    pub fn ratchet(&self, recorded: &Baseline) -> Ratchet {
        Baseline::compare(&self.to_baseline(), recorded)
    }

    /// The violations of one `(file, rule)` pair, for reporting new debt.
    pub fn of(&self, file: &str, rule: &str) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.file == file && v.rule == rule)
            .collect()
    }
}

/// Lints a single source string. The public entry point used by the
/// fixture tests; [`analyze_workspace`] drives it for every file on disk.
pub fn lint_source(
    crate_name: &str,
    rel_path: &str,
    role: FileRole,
    source: &str,
) -> Vec<Violation> {
    let tokens = lexer::lex(source);
    let ctx = FileContext {
        crate_name,
        rel_path,
        role,
    };
    lint_tokens(&ctx, &tokens)
}

/// Scans every source file of the workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<AnalysisReport, AnalysisError> {
    let files = workspace::discover(root)?;
    let mut report = AnalysisReport::default();
    for file in &files {
        report
            .violations
            .extend(lint_file(file).map_err(|e| e.while_scanning(&file.rel_path))?);
    }
    report.files_scanned = files.len();
    Ok(report)
}

fn lint_file(file: &SourceFile) -> Result<Vec<Violation>, AnalysisError> {
    let source = workspace::read(&file.abs_path)?;
    Ok(lint_source(
        &file.crate_name,
        &file.rel_path,
        file.role,
        &source,
    ))
}
