//! Ties discovery, lexing, the semantic model and both rule layers
//! together into one workspace scan.
//!
//! Scanning runs in two phases. Phase one is per-file and embarrassingly
//! parallel: lex, build the [`FileModel`], run the per-file rules,
//! collect escape comments, fingerprint every line. Phase two is serial:
//! assemble the [`WorkspaceModel`], run the cross-file rule families,
//! resolve each file's escapes against *all* of its violations, attach
//! content fingerprints, and sort. The merge is keyed by discovery
//! index, so output is byte-identical for every `--threads` setting.

use crate::baseline::{fingerprint_line, Baseline, Ratchet};
use crate::escapes::{self, Escape};
use crate::lexer;
use crate::model::{FileModel, WorkspaceModel};
use crate::registry::Registry;
use crate::rules::{self, FileContext, FileRole, Violation};
use crate::workspace::{self, SourceFile};
use crate::xrules;
use crate::AnalysisError;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Workspace-relative path of the CLI documentation the
/// `flag-doc-drift` rule reconciles against.
pub const EXPERIMENTS_DOC: &str = "EXPERIMENTS.md";
/// Workspace-relative path of the telemetry registry.
pub const TELEMETRY_REGISTRY: &str = "telemetry.registry.toml";

/// Tuning knobs for a workspace scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanOptions {
    /// Worker threads for the per-file phase; 0 means one per available
    /// CPU (capped by the file count). Output is identical either way.
    pub threads: usize,
}

/// The outcome of scanning a workspace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisReport {
    /// Every surviving violation, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// The semantic model the cross-file rules ran over.
    pub model: WorkspaceModel,
}

impl AnalysisReport {
    /// Live violations in baseline form.
    pub fn to_baseline(&self) -> Baseline {
        Baseline::from_violations(&self.violations)
    }

    /// Ratchets this report against a recorded baseline.
    pub fn ratchet(&self, recorded: &Baseline) -> Ratchet {
        Baseline::compare(&self.to_baseline(), recorded)
    }

    /// The violations of one `(file, rule)` pair, for reporting new debt.
    pub fn of(&self, file: &str, rule: &str) -> Vec<&Violation> {
        self.violations
            .iter()
            .filter(|v| v.file == file && v.rule == rule)
            .collect()
    }
}

/// One source file presented in memory, for fixture-style scans that
/// exercise the cross-file rules without touching disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSource {
    /// Package name the file belongs to.
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// The file's role.
    pub role: FileRole,
    /// The file's source text.
    pub text: String,
}

/// An in-memory workspace: sources plus the two contract documents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemWorkspace {
    /// The source files, in discovery order.
    pub sources: Vec<MemSource>,
    /// The EXPERIMENTS.md text (empty string when absent).
    pub experiments_md: String,
    /// The telemetry.registry.toml text (empty string = empty registry).
    pub registry_toml: String,
}

/// Per-file scan result produced by the parallel phase.
struct FileScan {
    model: FileModel,
    raw: Vec<Violation>,
    escapes: Vec<Escape>,
    /// Malformed/unknown-rule escape violations (never suppressible).
    escape_violations: Vec<Violation>,
    /// FNV-1a fingerprint of each line's trimmed text.
    line_fps: Vec<u64>,
}

/// Lints a single source string with per-file rules and escape
/// resolution — the entry point fixture tests use; cross-file rules need
/// [`analyze_sources`] or [`analyze_workspace`].
pub fn lint_source(
    crate_name: &str,
    rel_path: &str,
    role: FileRole,
    source: &str,
) -> Vec<Violation> {
    let scan = scan_source(crate_name, rel_path, role, source);
    let mut out = escapes::resolve(rel_path, &scan.escapes, scan.raw);
    out.extend(scan.escape_violations);
    attach_fingerprints(&mut out, rel_path, &scan.line_fps);
    sort_violations(&mut out);
    out
}

/// Scans every source file of the workspace rooted at `root`, using one
/// thread (see [`analyze_workspace_with`] for the parallel variant).
pub fn analyze_workspace(root: &Path) -> Result<AnalysisReport, AnalysisError> {
    analyze_workspace_with(root, ScanOptions { threads: 1 })
}

/// Scans every source file of the workspace rooted at `root` with the
/// given options, then runs the cross-file rule families.
pub fn analyze_workspace_with(
    root: &Path,
    opts: ScanOptions,
) -> Result<AnalysisReport, AnalysisError> {
    let files = workspace::discover(root)?;
    let scans = scan_files(&files, opts.threads)?;
    let experiments = read_optional(&root.join(EXPERIMENTS_DOC))?;
    let registry_text = read_optional(&root.join(TELEMETRY_REGISTRY))?;
    finish(scans, files.len(), &experiments, &registry_text)
}

/// Scans an in-memory workspace — the same pipeline as
/// [`analyze_workspace_with`], minus the filesystem.
pub fn analyze_sources(ws: &MemWorkspace) -> Result<AnalysisReport, AnalysisError> {
    let scans = ws
        .sources
        .iter()
        .map(|s| scan_source(&s.crate_name, &s.rel_path, s.role, &s.text))
        .collect();
    finish(
        scans,
        ws.sources.len(),
        &ws.experiments_md,
        &ws.registry_toml,
    )
}

// ---------------------------------------------------------------------------
// Phase one: per-file scans
// ---------------------------------------------------------------------------

fn scan_source(crate_name: &str, rel_path: &str, role: FileRole, source: &str) -> FileScan {
    let tokens = lexer::lex(source);
    let ctx = FileContext {
        crate_name,
        rel_path,
        role,
    };
    let line_fps = source.lines().map(fingerprint_line).collect();
    if !matches!(role, FileRole::Lib | FileRole::Bin) {
        return FileScan {
            model: FileModel::from_tokens(&ctx, &[], &[]),
            raw: Vec::new(),
            escapes: Vec::new(),
            escape_violations: Vec::new(),
            line_fps,
        };
    }
    let in_test = rules::test_spans(&tokens);
    let model = FileModel::from_tokens(&ctx, &tokens, &in_test);
    let raw = rules::per_file_violations(&ctx, &tokens, &in_test);
    let (escapes, escape_violations) = escapes::collect(&ctx, &tokens);
    FileScan {
        model,
        raw,
        escapes,
        escape_violations,
        line_fps,
    }
}

fn scan_file(file: &SourceFile) -> Result<FileScan, AnalysisError> {
    let source = workspace::read(&file.abs_path).map_err(|e| e.while_scanning(&file.rel_path))?;
    Ok(scan_source(
        &file.crate_name,
        &file.rel_path,
        file.role,
        &source,
    ))
}

/// Scans all files, fanning out over `threads` workers (0 = one per
/// CPU). Results are merged by discovery index, so the outcome does not
/// depend on scheduling. Worker coordination deliberately uses an atomic
/// work index plus one `OnceLock` slot per file — no locks for the
/// analyzer's own lock-order rule to reason about.
fn scan_files(files: &[SourceFile], threads: usize) -> Result<Vec<FileScan>, AnalysisError> {
    let worker_count = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .clamp(1, files.len().max(1));
    if worker_count <= 1 {
        return files.iter().map(scan_file).collect();
    }
    let slots: Vec<OnceLock<Result<FileScan, AnalysisError>>> =
        (0..files.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(file) = files.get(i) else { break };
                let Some(slot) = slots.get(i) else { break };
                let _ = slot.set(scan_file(file));
            });
        }
    });
    let mut out = Vec::with_capacity(files.len());
    for (slot, file) in slots.into_iter().zip(files) {
        match slot.into_inner() {
            Some(result) => out.push(result?),
            None => {
                return Err(AnalysisError::Manifest {
                    path: file.rel_path.clone().into(),
                    message: "internal error: file scan produced no result".to_string(),
                })
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Phase two: cross-file rules, escapes, fingerprints, ordering
// ---------------------------------------------------------------------------

fn finish(
    scans: Vec<FileScan>,
    files_scanned: usize,
    experiments: &str,
    registry_text: &str,
) -> Result<AnalysisReport, AnalysisError> {
    let registry = if registry_text.trim().is_empty() {
        Registry::default()
    } else {
        Registry::parse(registry_text).map_err(|message| AnalysisError::Manifest {
            path: TELEMETRY_REGISTRY.into(),
            message,
        })?
    };

    let model = WorkspaceModel {
        files: scans.iter().map(|s| s.model.clone()).collect(),
    };
    let mut cross = xrules::check_lock_order(&model);
    cross.extend(xrules::check_telemetry_contract(
        &model,
        &registry,
        TELEMETRY_REGISTRY,
    ));
    cross.extend(xrules::check_flag_doc_drift(
        &model,
        experiments,
        EXPERIMENTS_DOC,
    ));
    cross.extend(xrules::check_determinism_taint(&model));

    // Group everything by source file so each file's escapes can resolve
    // against all of its violations, cross-file ones included.
    // Violations anchored in the two contract documents have no escapes.
    let mut grouped: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for s in &scans {
        grouped.entry(s.model.rel_path.clone()).or_default();
    }
    for v in scans.iter().flat_map(|s| s.raw.iter()) {
        if let Some(bucket) = grouped.get_mut(&v.file) {
            bucket.push(v.clone());
        }
    }
    let mut doc_violations = Vec::new();
    for v in cross {
        match grouped.get_mut(&v.file) {
            Some(bucket) => bucket.push(v),
            None => doc_violations.push(v),
        }
    }

    let mut violations = Vec::new();
    for s in &scans {
        let raw = grouped.remove(&s.model.rel_path).unwrap_or_default();
        let mut resolved = escapes::resolve(&s.model.rel_path, &s.escapes, raw);
        resolved.extend(s.escape_violations.iter().cloned());
        attach_fingerprints(&mut resolved, &s.model.rel_path, &s.line_fps);
        violations.extend(resolved);
    }
    let doc_fps: Vec<u64> = experiments.lines().map(fingerprint_line).collect();
    let reg_fps: Vec<u64> = registry_text.lines().map(fingerprint_line).collect();
    for mut v in doc_violations {
        let fps = if v.file == EXPERIMENTS_DOC {
            &doc_fps
        } else {
            &reg_fps
        };
        v.fingerprint = line_fp(fps, v.line);
        violations.push(v);
    }
    sort_violations(&mut violations);
    Ok(AnalysisReport {
        violations,
        files_scanned,
        model,
    })
}

/// Stamps each violation of one file with its line's content
/// fingerprint.
fn attach_fingerprints(violations: &mut [Violation], rel_path: &str, line_fps: &[u64]) {
    for v in violations {
        if v.file == rel_path {
            v.fingerprint = line_fp(line_fps, v.line);
        }
    }
}

fn line_fp(line_fps: &[u64], line: u32) -> u64 {
    (line as usize)
        .checked_sub(1)
        .and_then(|i| line_fps.get(i))
        .copied()
        .unwrap_or_else(|| fingerprint_line(""))
}

/// The one canonical violation order: file, then line, then rule, then
/// message (two violations can share a line and rule).
fn sort_violations(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}

fn read_optional(path: &Path) -> Result<String, AnalysisError> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(String::new()),
        Err(e) => Err(AnalysisError::io(path, e)),
    }
}
