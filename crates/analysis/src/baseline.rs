//! The ratcheting baseline: recorded debt that may only shrink.
//!
//! `analysis.baseline.toml` (format version 2) records one entry per
//! distinct `(file, rule, fingerprint)` violation, where the fingerprint
//! is an FNV-1a hash of the offending line's trimmed text. Keying on
//! content instead of line numbers means unrelated edits *above* a waived
//! violation do not churn the baseline — the line number is stored only
//! as a navigation hint. Identical lines violating the same rule in the
//! same file share a key; the entry's `count` covers them as a multiset.
//!
//! The check fails when a live violation has no matching grant (new debt)
//! and when a grant matches nothing live (stale entry: the debt was paid
//! but the baseline still grants it — regenerate so the ratchet clicks
//! down).
//!
//! The format is a deliberately tiny TOML subset, parsed and rendered by
//! hand (this crate has no dependencies):
//!
//! ```toml
//! version = 2
//!
//! [[entry]]
//! file = "crates/sim/src/engine.rs"
//! rule = "panic-path"
//! fingerprint = "64c5b03ef8bbcc29"
//! line = 120
//! count = 1
//! ```

use crate::rules::Violation;
use std::collections::BTreeMap;
use std::fmt;

/// What one baseline entry grants: a violation multiplicity plus the
/// line hint recorded at regeneration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// How many identical violations the entry covers.
    pub count: u64,
    /// 1-based line the first covered violation sat on when recorded
    /// (a hint only — matching is by fingerprint).
    pub line: u32,
}

/// Recorded (or live) violations keyed by `(file, rule, fingerprint)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    /// Grants in sorted key order.
    pub entries: BTreeMap<(String, String, u64), Grant>,
}

/// One `(file, rule, fingerprint)` key whose live multiplicity differs
/// from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetDelta {
    /// Workspace-relative file.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Content fingerprint of the offending line.
    pub fingerprint: u64,
    /// Line hint (live when present, else the recorded hint).
    pub line: u32,
    /// Live violation count for the key.
    pub actual: u64,
    /// Count the baseline grants.
    pub recorded: u64,
}

impl fmt::Display for RatchetDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {} live vs {} baselined (fingerprint {:016x})",
            self.file, self.line, self.rule, self.actual, self.recorded, self.fingerprint
        )
    }
}

/// The verdict of comparing live violations against the baseline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ratchet {
    /// Keys with more live violations than the baseline grants.
    pub new: Vec<RatchetDelta>,
    /// Keys with fewer live violations than recorded (stale grants).
    pub stale: Vec<RatchetDelta>,
}

impl Ratchet {
    /// Whether the tree is clean against the baseline.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content fingerprint of one source line: FNV-1a of its trimmed
/// text, so re-indentation does not churn the baseline.
pub fn fingerprint_line(line: &str) -> u64 {
    fnv1a64(line.trim().as_bytes())
}

impl Baseline {
    /// Aggregates live violations into fingerprint-keyed grants. The line
    /// hint of a multi-violation key is its first (lowest) line.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut entries: BTreeMap<(String, String, u64), Grant> = BTreeMap::new();
        for v in violations {
            let grant = entries
                .entry((v.file.clone(), v.rule.to_string(), v.fingerprint))
                .or_insert(Grant {
                    count: 0,
                    line: v.line,
                });
            grant.count += 1;
            grant.line = grant.line.min(v.line);
        }
        Baseline { entries }
    }

    /// Total violations granted.
    pub fn total(&self) -> u64 {
        self.entries.values().map(|g| g.count).sum()
    }

    /// For each violation, in order, whether a grant covers it (grants
    /// are consumed as a multiset, first come first served).
    pub fn covered_mask(&self, violations: &[Violation]) -> Vec<bool> {
        let mut budget: BTreeMap<(&str, &str, u64), u64> = self
            .entries
            .iter()
            .map(|((f, r, fp), g)| ((f.as_str(), r.as_str(), *fp), g.count))
            .collect();
        violations
            .iter()
            .map(
                |v| match budget.get_mut(&(v.file.as_str(), v.rule, v.fingerprint)) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        true
                    }
                    _ => false,
                },
            )
            .collect()
    }

    /// Live violations not covered by any grant, in input order — the
    /// concrete sites behind [`Ratchet::new`], for reporting.
    pub fn unmatched<'a>(&self, violations: &'a [Violation]) -> Vec<&'a Violation> {
        self.covered_mask(violations)
            .into_iter()
            .zip(violations)
            .filter_map(|(covered, v)| if covered { None } else { Some(v) })
            .collect()
    }

    /// Parses the baseline file format. Unknown keys are rejected so
    /// typos cannot silently widen the grant; a version-1 (count-keyed)
    /// baseline is rejected with a pointer at regeneration.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries: BTreeMap<(String, String, u64), Grant> = BTreeMap::new();
        let mut current: Option<Partial> = None;
        let mut version_seen = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = n + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                commit_entry(&mut current, &mut entries, lineno)?;
                current = Some((None, None, None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&mut current, key) {
                (None, "version") => {
                    if value == "1" {
                        return Err("legacy version-1 (count-keyed) baseline; regenerate with \
                             `cargo run -p pipedepth-analysis -- check --update-baseline`"
                            .to_string());
                    }
                    if value != "2" {
                        return Err(format!(
                            "line {lineno}: unsupported baseline version {value}"
                        ));
                    }
                    version_seen = true;
                }
                (Some((file, ..)), "file") => *file = Some(unquote(value, lineno)?),
                (Some((_, rule, ..)), "rule") => *rule = Some(unquote(value, lineno)?),
                (Some((_, _, fp, ..)), "fingerprint") => {
                    let hex = unquote(value, lineno)?;
                    *fp = Some(u64::from_str_radix(&hex, 16).map_err(|_| {
                        format!("line {lineno}: fingerprint must be hex, got `{hex}`")
                    })?);
                }
                (Some((_, _, _, hint, _)), "line") => {
                    *hint = Some(value.parse::<u32>().map_err(|_| {
                        format!("line {lineno}: line must be an integer, got `{value}`")
                    })?);
                }
                (Some((.., count)), "count") => {
                    *count = Some(value.parse::<u64>().map_err(|_| {
                        format!("line {lineno}: count must be an integer, got `{value}`")
                    })?);
                }
                _ => return Err(format!("line {lineno}: unexpected key `{key}`")),
            }
        }
        commit_entry(&mut current, &mut entries, text.lines().count())?;
        if !version_seen {
            return Err("baseline is missing `version = 2`".to_string());
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline in its canonical sorted form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Ratcheting lint baseline for `pipedepth-analysis`.\n\
             # Regenerate with: cargo run -p pipedepth-analysis -- check --update-baseline\n\
             # Entries record *existing* debt keyed by (file, rule, line-content\n\
             # fingerprint); the line number is a navigation hint only. New violations\n\
             # and paid-off entries both fail CI, so this file only ever shrinks.\n\
             version = 2\n",
        );
        for ((file, rule, fp), grant) in &self.entries {
            out.push_str(&format!(
                "\n[[entry]]\nfile = \"{file}\"\nrule = \"{rule}\"\n\
                 fingerprint = \"{fp:016x}\"\nline = {}\ncount = {}\n",
                grant.line, grant.count
            ));
        }
        out
    }

    /// Ratchets live grants against the recorded grant.
    pub fn compare(actual: &Baseline, recorded: &Baseline) -> Ratchet {
        let mut ratchet = Ratchet::default();
        let keys: std::collections::BTreeSet<&(String, String, u64)> = actual
            .entries
            .keys()
            .chain(recorded.entries.keys())
            .collect();
        for key in keys {
            let live = actual.entries.get(key).copied();
            let granted = recorded.entries.get(key).copied();
            let actual_n = live.map(|g| g.count).unwrap_or(0);
            let recorded_n = granted.map(|g| g.count).unwrap_or(0);
            let delta = RatchetDelta {
                file: key.0.clone(),
                rule: key.1.clone(),
                fingerprint: key.2,
                line: live.or(granted).map(|g| g.line).unwrap_or(0),
                actual: actual_n,
                recorded: recorded_n,
            };
            match actual_n.cmp(&recorded_n) {
                std::cmp::Ordering::Greater => ratchet.new.push(delta),
                std::cmp::Ordering::Less => ratchet.stale.push(delta),
                std::cmp::Ordering::Equal => {}
            }
        }
        ratchet
    }
}

type Partial = (
    Option<String>,
    Option<String>,
    Option<u64>,
    Option<u32>,
    Option<u64>,
);

fn commit_entry(
    current: &mut Option<Partial>,
    entries: &mut BTreeMap<(String, String, u64), Grant>,
    lineno: usize,
) -> Result<(), String> {
    let Some((file, rule, fp, line, count)) = current.take() else {
        return Ok(());
    };
    match (file, rule, fp, line, count) {
        (Some(file), Some(rule), Some(fp), Some(line), Some(count)) => {
            if entries
                .insert((file.clone(), rule.clone(), fp), Grant { count, line })
                .is_some()
            {
                return Err(format!(
                    "duplicate baseline entry for {file} [{rule}] {fp:016x}"
                ));
            }
            Ok(())
        }
        _ => Err(format!(
            "entry ending near line {lineno} must set `file`, `rule`, `fingerprint`, \
             `line` and `count`"
        )),
    }
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
    v.map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(file: &str, rule: &'static str, line: u32, fp: u64) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            fingerprint: fp,
            message: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = Baseline::from_violations(&[
            viol("crates/a/src/lib.rs", "panic-path", 3, 0xdead),
            viol("crates/a/src/lib.rs", "panic-path", 9, 0xdead),
            viol("crates/b/src/x.rs", "hash-collections", 1, 0xbeef),
        ]);
        let parsed = Baseline::parse(&b.render()).expect("round trip");
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 3);
    }

    #[test]
    fn matching_fingerprints_on_different_lines_are_clean() {
        let recorded = Baseline::from_violations(&[viol("f.rs", "panic-path", 10, 7)]);
        let live = Baseline::from_violations(&[viol("f.rs", "panic-path", 42, 7)]);
        assert!(Baseline::compare(&live, &recorded).is_clean());
    }

    #[test]
    fn different_fingerprints_are_both_new_and_stale() {
        let recorded = Baseline::from_violations(&[viol("f.rs", "panic-path", 10, 7)]);
        let live = Baseline::from_violations(&[viol("f.rs", "panic-path", 10, 8)]);
        let r = Baseline::compare(&live, &recorded);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.stale.len(), 1);
    }

    #[test]
    fn unmatched_respects_the_grant_multiset() {
        let recorded = Baseline::from_violations(&[viol("f.rs", "panic-path", 10, 7)]);
        let live = [
            viol("f.rs", "panic-path", 10, 7),
            viol("f.rs", "panic-path", 20, 7),
        ];
        let extra = recorded.unmatched(&live);
        assert_eq!(extra.len(), 1);
        assert_eq!(extra[0].line, 20, "the first occurrence consumed the grant");
    }

    #[test]
    fn rejects_malformed_and_legacy_input() {
        let legacy = Baseline::parse("version = 1\n");
        assert!(legacy.is_err());
        assert!(format!("{legacy:?}").contains("legacy"));
        assert!(Baseline::parse("version = 3\n").is_err());
        assert!(Baseline::parse("[[entry]]\nfile = \"f\"\n").is_err());
        assert!(Baseline::parse("version = 2\nbogus = 3\n").is_err());
        assert!(Baseline::parse(
            "version = 2\n[[entry]]\nfile = \"f\"\nrule = \"r\"\n\
             fingerprint = \"zz\"\nline = 1\ncount = 1\n"
        )
        .is_err());
    }

    #[test]
    fn fingerprint_ignores_indentation() {
        assert_eq!(
            fingerprint_line("  x.unwrap();"),
            fingerprint_line("\tx.unwrap();")
        );
        assert_ne!(
            fingerprint_line("x.unwrap();"),
            fingerprint_line("y.unwrap();")
        );
    }
}
