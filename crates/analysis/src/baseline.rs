//! The ratcheting baseline: recorded debt that may only shrink.
//!
//! `analysis.baseline.toml` records, per `(file, rule)` pair, how many
//! violations existed when the baseline was last regenerated. The check
//! fails when a pair's live count **exceeds** its recorded count (new debt)
//! and also when it **falls below** it (stale entry: the debt was paid but
//! the baseline still grants it — regenerate so the ratchet clicks down).
//! Counts are used instead of line numbers so unrelated edits that shift
//! code do not invalidate the baseline.
//!
//! The format is a deliberately tiny TOML subset, parsed and rendered by
//! hand (this crate has no dependencies):
//!
//! ```toml
//! version = 1
//!
//! [[entry]]
//! file = "crates/sim/src/engine.rs"
//! rule = "panic-path"
//! count = 3
//! ```

use crate::rules::Violation;
use std::collections::BTreeMap;
use std::fmt;

/// Recorded (or live) violation counts per `(file, rule)`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    /// Counts keyed by `(file, rule)`, in sorted order.
    pub entries: BTreeMap<(String, String), u64>,
}

/// One `(file, rule)` pair whose live count differs from the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatchetDelta {
    /// Workspace-relative file.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// Live violation count.
    pub actual: u64,
    /// Count the baseline grants.
    pub recorded: u64,
}

impl fmt::Display for RatchetDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}]: {} live vs {} baselined",
            self.file, self.rule, self.actual, self.recorded
        )
    }
}

/// The verdict of comparing live violations against the baseline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ratchet {
    /// Pairs with more live violations than the baseline grants.
    pub new: Vec<RatchetDelta>,
    /// Pairs with fewer live violations than recorded (stale grants).
    pub stale: Vec<RatchetDelta>,
}

impl Ratchet {
    /// Whether the tree is clean against the baseline.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Aggregates live violations into per-`(file, rule)` counts.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut entries: BTreeMap<(String, String), u64> = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.file.clone(), v.rule.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Total violations granted.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// The count granted to one `(file, rule)` pair (0 when absent).
    pub fn granted(&self, file: &str, rule: &str) -> u64 {
        self.entries
            .get(&(file.to_string(), rule.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Parses the baseline file format. Unknown keys are rejected so typos
    /// cannot silently widen the grant.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        let mut current: Option<(Option<String>, Option<String>, Option<u64>)> = None;
        let mut version_seen = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = n + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[entry]]" {
                commit_entry(&mut current, &mut entries, lineno)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&mut current, key) {
                (None, "version") => {
                    if value != "1" {
                        return Err(format!(
                            "line {lineno}: unsupported baseline version {value}"
                        ));
                    }
                    version_seen = true;
                }
                (Some((file, _, _)), "file") => *file = Some(unquote(value, lineno)?),
                (Some((_, rule, _)), "rule") => *rule = Some(unquote(value, lineno)?),
                (Some((_, _, count)), "count") => {
                    *count = Some(value.parse::<u64>().map_err(|_| {
                        format!("line {lineno}: count must be an integer, got `{value}`")
                    })?);
                }
                _ => return Err(format!("line {lineno}: unexpected key `{key}`")),
            }
        }
        commit_entry(&mut current, &mut entries, text.lines().count())?;
        if !version_seen {
            return Err("baseline is missing `version = 1`".to_string());
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline in its canonical sorted form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Ratcheting lint baseline for `pipedepth-analysis`.\n\
             # Regenerate with: cargo run -p pipedepth-analysis -- check --update-baseline\n\
             # Entries record *existing* debt; new violations and paid-off entries both\n\
             # fail CI, so this file only ever shrinks.\n\
             version = 1\n",
        );
        for ((file, rule), count) in &self.entries {
            out.push_str(&format!(
                "\n[[entry]]\nfile = \"{file}\"\nrule = \"{rule}\"\ncount = {count}\n"
            ));
        }
        out
    }

    /// Ratchets live counts against the recorded grant.
    pub fn compare(actual: &Baseline, recorded: &Baseline) -> Ratchet {
        let mut ratchet = Ratchet::default();
        let keys: std::collections::BTreeSet<&(String, String)> = actual
            .entries
            .keys()
            .chain(recorded.entries.keys())
            .collect();
        for key in keys {
            let live = actual.entries.get(key).copied().unwrap_or(0);
            let granted = recorded.entries.get(key).copied().unwrap_or(0);
            let delta = RatchetDelta {
                file: key.0.clone(),
                rule: key.1.clone(),
                actual: live,
                recorded: granted,
            };
            match live.cmp(&granted) {
                std::cmp::Ordering::Greater => ratchet.new.push(delta),
                std::cmp::Ordering::Less => ratchet.stale.push(delta),
                std::cmp::Ordering::Equal => {}
            }
        }
        ratchet
    }
}

fn commit_entry(
    current: &mut Option<(Option<String>, Option<String>, Option<u64>)>,
    entries: &mut BTreeMap<(String, String), u64>,
    lineno: usize,
) -> Result<(), String> {
    let Some((file, rule, count)) = current.take() else {
        return Ok(());
    };
    match (file, rule, count) {
        (Some(file), Some(rule), Some(count)) => {
            if entries
                .insert((file.clone(), rule.clone()), count)
                .is_some()
            {
                return Err(format!("duplicate baseline entry for {file} [{rule}]"));
            }
            Ok(())
        }
        _ => Err(format!(
            "entry ending near line {lineno} must set `file`, `rule` and `count`"
        )),
    }
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
    v.map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(pairs: &[(&str, &str, u64)]) -> Baseline {
        Baseline {
            entries: pairs
                .iter()
                .map(|(f, r, c)| ((f.to_string(), r.to_string()), *c))
                .collect(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let b = baseline(&[
            ("crates/a/src/lib.rs", "panic-path", 3),
            ("crates/b/src/x.rs", "hash-collections", 1),
        ]);
        let parsed = Baseline::parse(&b.render()).expect("round trip");
        assert_eq!(parsed, b);
        assert_eq!(parsed.total(), 4);
    }

    #[test]
    fn equal_counts_are_clean() {
        let live = baseline(&[("f.rs", "panic-path", 2)]);
        let rec = baseline(&[("f.rs", "panic-path", 2)]);
        assert!(Baseline::compare(&live, &rec).is_clean());
    }

    #[test]
    fn excess_is_new_and_shortfall_is_stale() {
        let live = baseline(&[("f.rs", "panic-path", 3), ("g.rs", "missing-docs", 0)]);
        let rec = baseline(&[("f.rs", "panic-path", 2), ("g.rs", "missing-docs", 1)]);
        let r = Baseline::compare(&live, &rec);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].actual, 3);
        assert_eq!(r.stale.len(), 1);
        assert_eq!(r.stale[0].file, "g.rs");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Baseline::parse("version = 2\n").is_err());
        assert!(Baseline::parse("[[entry]]\nfile = \"f\"\n").is_err());
        assert!(Baseline::parse("version = 1\nbogus = 3\n").is_err());
        assert!(
            Baseline::parse("version = 1\n[[entry]]\nfile = \"f\"\nrule = \"r\"\ncount = x\n")
                .is_err()
        );
    }

    #[test]
    fn missing_version_is_rejected() {
        assert!(Baseline::parse("[[entry]]\nfile = \"f\"\nrule = \"r\"\ncount = 1\n").is_err());
    }
}
