//! `pipedepth-analysis` CLI: `check` walks the workspace and enforces the
//! determinism/panic/doc rules against the ratcheting baseline.
//!
//! ```text
//! cargo run -p pipedepth-analysis -- check                    # enforce
//! cargo run -p pipedepth-analysis -- check --update-baseline  # re-ratchet
//! cargo run -p pipedepth-analysis -- rules                    # list rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations or stale baseline, 2 usage/IO error.

use pipedepth_analysis::baseline::Baseline;
use pipedepth_analysis::engine::analyze_workspace;
use pipedepth_analysis::workspace;
use pipedepth_analysis::ALL_RULES;
use std::path::PathBuf;
use std::process::ExitCode;

struct CheckArgs {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match parse_check_args(&args[1..]) {
            Ok(parsed) => run_check(parsed),
            Err(msg) => usage_error(&msg),
        },
        Some("rules") => {
            for rule in ALL_RULES {
                println!("{:<24} {}", rule.id, rule.summary);
            }
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown subcommand `{other}`")),
        None => usage_error("missing subcommand"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: pipedepth-analysis <check [--update-baseline] [--root DIR] \
         [--baseline FILE] | rules>"
    );
    ExitCode::from(2)
}

fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut parsed = CheckArgs {
        root: None,
        baseline: None,
        update_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" => parsed.update_baseline = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory")?;
                parsed.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a file path")?;
                parsed.baseline = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn run_check(args: CheckArgs) -> ExitCode {
    let root = match args.root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("error: cannot read current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match workspace::find_root(&cwd) {
                Ok(root) => root,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("analysis.baseline.toml"));

    let report = match analyze_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let live = report.to_baseline();

    if args.update_baseline {
        let previous = load_baseline(&baseline_path).unwrap_or_default();
        if let Err(e) = std::fs::write(&baseline_path, live.render()) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} -> {} violations across {} entries ({} files scanned)",
            previous.total(),
            live.total(),
            live.entries.len(),
            report.files_scanned,
        );
        return ExitCode::SUCCESS;
    }

    let recorded = match load_baseline(&baseline_path) {
        Some(recorded) => recorded,
        None => {
            println!(
                "note: no baseline at {}; treating all violations as new",
                baseline_path.display()
            );
            Baseline::default()
        }
    };
    let ratchet = report.ratchet(&recorded);
    if ratchet.is_clean() {
        println!(
            "analysis clean: {} files scanned, {} baselined violations across {} entries",
            report.files_scanned,
            recorded.total(),
            recorded.entries.len(),
        );
        return ExitCode::SUCCESS;
    }
    for delta in &ratchet.new {
        println!(
            "NEW {delta} — fix, justify with `// analysis: allow({}) — <reason>`, \
             or (for pre-existing debt) regenerate the baseline",
            delta.rule
        );
        for v in report.of(&delta.file, &delta.rule) {
            println!("  {}:{} [{}] {}", v.file, v.line, v.rule, v.message);
        }
    }
    for delta in &ratchet.stale {
        println!("STALE {delta} — debt paid down; run `check --update-baseline` to ratchet");
    }
    println!(
        "analysis FAILED: {} new (file, rule) pair(s), {} stale baseline entr(ies)",
        ratchet.new.len(),
        ratchet.stale.len(),
    );
    ExitCode::FAILURE
}

/// Loads the committed baseline; `None` when the file does not exist.
/// A present-but-malformed baseline terminates with exit code 2.
fn load_baseline(path: &PathBuf) -> Option<Baseline> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    match Baseline::parse(&text) {
        Ok(baseline) => Some(baseline),
        Err(msg) => {
            eprintln!("error: {}: {msg}", path.display());
            std::process::exit(2);
        }
    }
}
