//! `pipedepth-analysis` CLI: `check` walks the workspace and enforces the
//! determinism/concurrency/contract/panic/doc rules against the
//! ratcheting baseline; `metrics` drafts the telemetry registry.
//!
//! ```text
//! cargo run -p pipedepth-analysis -- check                    # enforce
//! cargo run -p pipedepth-analysis -- check --update-baseline  # re-ratchet
//! cargo run -p pipedepth-analysis -- check --format json      # machine output
//! cargo run -p pipedepth-analysis -- metrics                  # draft registry
//! cargo run -p pipedepth-analysis -- metrics --check          # registry gate
//! cargo run -p pipedepth-analysis -- rules                    # list rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations or stale baseline, 2 usage/IO error.

use pipedepth_analysis::baseline::Baseline;
use pipedepth_analysis::engine::{analyze_workspace_with, ScanOptions};
use pipedepth_analysis::registry::Registry;
use pipedepth_analysis::rules::TELEMETRY_CONTRACT;
use pipedepth_analysis::{report as report_fmt, workspace, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Github,
}

struct CheckArgs {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    format: Format,
    threads: usize,
    report_path: Option<PathBuf>,
}

struct MetricsArgs {
    root: Option<PathBuf>,
    check: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match parse_check_args(&args[1..]) {
            Ok(parsed) => run_check(parsed),
            Err(msg) => usage_error(&msg),
        },
        Some("metrics") => match parse_metrics_args(&args[1..]) {
            Ok(parsed) => run_metrics(parsed),
            Err(msg) => usage_error(&msg),
        },
        Some("rules") => {
            for rule in ALL_RULES {
                println!("{:<24} {}", rule.id, rule.summary);
            }
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown subcommand `{other}`")),
        None => usage_error("missing subcommand"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: pipedepth-analysis <check [--update-baseline] [--root DIR] \
         [--baseline FILE] [--format text|json|github] [--threads N] \
         [--report FILE] | metrics [--check] [--root DIR] | rules>"
    );
    ExitCode::from(2)
}

fn parse_check_args(args: &[String]) -> Result<CheckArgs, String> {
    let mut parsed = CheckArgs {
        root: None,
        baseline: None,
        update_baseline: false,
        format: Format::Text,
        threads: 0,
        report_path: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--update-baseline" => parsed.update_baseline = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory")?;
                parsed.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline requires a file path")?;
                parsed.baseline = Some(PathBuf::from(v));
            }
            "--format" => {
                let v = it.next().ok_or("--format requires text, json or github")?;
                parsed.format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a count")?;
                parsed.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--report" => {
                let v = it.next().ok_or("--report requires a file path")?;
                parsed.report_path = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn parse_metrics_args(args: &[String]) -> Result<MetricsArgs, String> {
    let mut parsed = MetricsArgs {
        root: None,
        check: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => parsed.check = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory")?;
                parsed.root = Some(PathBuf::from(v));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(parsed)
}

fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    match root {
        Some(root) => Ok(root),
        None => {
            let cwd = std::env::current_dir().map_err(|e| {
                eprintln!("error: cannot read current directory: {e}");
                ExitCode::from(2)
            })?;
            workspace::find_root(&cwd).map_err(|e| {
                eprintln!("error: {e}");
                ExitCode::from(2)
            })
        }
    }
}

fn run_check(args: CheckArgs) -> ExitCode {
    let root = match resolve_root(args.root) {
        Ok(root) => root,
        Err(code) => return code,
    };
    let baseline_path = args
        .baseline
        .unwrap_or_else(|| root.join("analysis.baseline.toml"));

    let opts = ScanOptions {
        threads: args.threads,
    };
    let report = match analyze_workspace_with(&root, opts) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let live = report.to_baseline();

    if args.update_baseline {
        // Regeneration replaces the file wholesale, so a legacy or
        // malformed previous baseline is no obstacle — treat it as empty.
        let previous = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|text| Baseline::parse(&text).ok())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(&baseline_path, live.render()) {
            eprintln!("error: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "baseline updated: {} -> {} violations across {} entries ({} files scanned)",
            previous.total(),
            live.total(),
            live.entries.len(),
            report.files_scanned,
        );
        return ExitCode::SUCCESS;
    }

    let recorded = match load_baseline(&baseline_path) {
        Some(recorded) => recorded,
        None => {
            if args.format == Format::Text {
                println!(
                    "note: no baseline at {}; treating all violations as new",
                    baseline_path.display()
                );
            }
            Baseline::default()
        }
    };
    let ratchet = report.ratchet(&recorded);

    if let Some(path) = &args.report_path {
        let json = report_fmt::render_json(&report, &recorded, &ratchet);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match args.format {
        Format::Json => {
            print!("{}", report_fmt::render_json(&report, &recorded, &ratchet));
        }
        Format::Github => {
            print!(
                "{}",
                report_fmt::render_github(&report, &recorded, &ratchet)
            );
            print_text_summary(&report, &recorded, &ratchet);
        }
        Format::Text => print_text_summary(&report, &recorded, &ratchet),
    }
    if ratchet.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_text_summary(
    report: &pipedepth_analysis::AnalysisReport,
    recorded: &Baseline,
    ratchet: &pipedepth_analysis::Ratchet,
) {
    if ratchet.is_clean() {
        println!(
            "analysis clean: {} files scanned, {} baselined violations across {} entries",
            report.files_scanned,
            recorded.total(),
            recorded.entries.len(),
        );
        return;
    }
    for delta in &ratchet.new {
        println!(
            "NEW {delta} — fix, justify with `// analysis: allow({}) — <reason>`, \
             or (for pre-existing debt) regenerate the baseline",
            delta.rule
        );
        for v in report.of(&delta.file, &delta.rule) {
            println!("  {}:{} [{}] {}", v.file, v.line, v.rule, v.message);
        }
    }
    for delta in &ratchet.stale {
        println!("STALE {delta} — debt paid down; run `check --update-baseline` to ratchet");
    }
    println!(
        "analysis FAILED: {} new violation group(s), {} stale baseline entr(ies)",
        ratchet.new.len(),
        ratchet.stale.len(),
    );
}

/// `metrics` prints a canonical registry drafted from the live metric
/// inventory; `--check` instead fails (exit 1) if the committed registry
/// diverges from the code, ignoring the baseline entirely.
fn run_metrics(args: MetricsArgs) -> ExitCode {
    let root = match resolve_root(args.root) {
        Ok(root) => root,
        Err(code) => return code,
    };
    let report = match analyze_workspace_with(&root, ScanOptions { threads: 0 }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !args.check {
        print!("{}", Registry::suggested(&report.model).render());
        return ExitCode::SUCCESS;
    }
    let divergences: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == TELEMETRY_CONTRACT)
        .collect();
    if divergences.is_empty() {
        println!("telemetry registry matches the code");
        return ExitCode::SUCCESS;
    }
    for v in &divergences {
        println!("{}:{} [{}] {}", v.file, v.line, v.rule, v.message);
    }
    println!(
        "metrics check FAILED: {} divergence(s) between code and {}",
        divergences.len(),
        pipedepth_analysis::TELEMETRY_REGISTRY,
    );
    ExitCode::FAILURE
}

/// Loads the committed baseline; `None` when the file does not exist.
/// A present-but-malformed baseline terminates with exit code 2.
fn load_baseline(path: &PathBuf) -> Option<Baseline> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    match Baseline::parse(&text) {
        Ok(baseline) => Some(baseline),
        Err(msg) => {
            eprintln!("error: {}: {msg}", path.display());
            std::process::exit(2);
        }
    }
}
