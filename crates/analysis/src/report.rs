//! Machine-readable output: a JSON report and GitHub workflow-command
//! annotations. Both are rendered by hand (no dependencies) and are
//! deterministic functions of the scan result, so byte-identical output
//! across `--threads` settings follows from the engine's deterministic
//! violation ordering.

use crate::baseline::{Baseline, Ratchet, RatchetDelta};
use crate::engine::AnalysisReport;
use crate::rules::ALL_RULES;

/// Renders the scan as a JSON document (schema version 1).
///
/// Every violation carries a `baselined` field telling whether a
/// baseline grant covered it; the `ratchet` object mirrors the exit
/// status (`clean`, plus the `new`/`stale` deltas).
pub fn render_json(report: &AnalysisReport, recorded: &Baseline, ratchet: &Ratchet) -> String {
    let covered = recorded.covered_mask(&report.violations);

    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"rules\": [\n");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"summary\": {}}}{}\n",
            json_str(rule.id),
            json_str(rule.summary),
            comma(i, ALL_RULES.len())
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"violations\": [\n");
    for (i, v) in report.violations.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"fingerprint\": {}, \
             \"baselined\": {}, \"message\": {}}}{}\n",
            json_str(v.rule),
            json_str(&v.file),
            v.line,
            json_str(&format!("{:016x}", v.fingerprint)),
            covered.get(i).copied().unwrap_or(false),
            json_str(&v.message),
            comma(i, report.violations.len())
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"ratchet\": {\n");
    out.push_str(&format!("    \"clean\": {},\n", ratchet.is_clean()));
    out.push_str("    \"new\": [\n");
    render_deltas(&mut out, &ratchet.new);
    out.push_str("    ],\n");
    out.push_str("    \"stale\": [\n");
    render_deltas(&mut out, &ratchet.stale);
    out.push_str("    ]\n");
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn render_deltas(out: &mut String, deltas: &[RatchetDelta]) {
    for (i, d) in deltas.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"file\": {}, \"rule\": {}, \"fingerprint\": {}, \"line\": {}, \
             \"actual\": {}, \"recorded\": {}}}{}\n",
            json_str(&d.file),
            json_str(&d.rule),
            json_str(&format!("{:016x}", d.fingerprint)),
            d.line,
            d.actual,
            d.recorded,
            comma(i, deltas.len())
        ));
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Renders GitHub workflow-command annotations: `::error` for every
/// violation the baseline does not cover, `::warning` for stale grants.
pub fn render_github(report: &AnalysisReport, recorded: &Baseline, ratchet: &Ratchet) -> String {
    let mut out = String::new();
    for v in recorded.unmatched(&report.violations) {
        out.push_str(&format!(
            "::error file={},line={},title=pipedepth-analysis {}::{}\n",
            v.file,
            v.line,
            v.rule,
            escape_property(&v.message)
        ));
    }
    for d in &ratchet.stale {
        out.push_str(&format!(
            "::warning title=pipedepth-analysis stale baseline::{}\n",
            escape_property(&format!(
                "{d} — debt paid down; run `check --update-baseline` to ratchet"
            ))
        ));
    }
    out
}

/// Escapes a string for a GitHub workflow-command message position.
fn escape_property(text: &str) -> String {
    text.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Encodes a JSON string literal (quotes included).
pub(crate) fn json_str(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_escape_controls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("em — dash"), "\"em — dash\"");
    }

    #[test]
    fn github_messages_escape_newlines() {
        assert_eq!(escape_property("a\nb%c"), "a%0Ab%25c");
    }
}
