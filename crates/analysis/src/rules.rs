//! The per-file lint rules: determinism, panic paths, documentation.
//!
//! Every rule has a stable string id — the same id used in baseline
//! entries and in escape comments (`// analysis: allow(<rule>) — reason`).
//! The cross-file families (`lock-order`, `telemetry-contract`,
//! `flag-doc-drift`, `determinism-taint`) live in the private `xrules` module but
//! share this module's id registry.
//!
//! | id | enforces |
//! |----|----------|
//! | `hash-collections` | no `HashMap`/`HashSet` in non-test code — iteration order feeds artifacts |
//! | `nondeterministic-time` | no `Instant`/`SystemTime` outside `pipedepth-telemetry` and the `repro` driver |
//! | `panic-path` | no `.unwrap()`/`.expect()`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | `missing-docs` | every `pub` item of the documented crates carries a doc comment |
//! | `escape-comment` | escape comments are well-formed, justified, and actually used |
//! | `lock-order` | consistent workspace lock order; no guard held across blocking calls |
//! | `telemetry-contract` | metric names in code ↔ `telemetry.registry.toml` |
//! | `flag-doc-drift` | CLI flags in binaries ↔ EXPERIMENTS.md |
//! | `determinism-taint` | no importing tainted `pub` signatures across crates |

use crate::lexer::{Token, TokenKind};

/// Where a source file sits in its package — determines which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code (`src/**`, excluding binary roots).
    Lib,
    /// Binary code (`src/main.rs`, `src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule id (see module docs).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// FNV-1a hash of the offending line's trimmed text (0 until the
    /// engine attaches it) — the content key baseline entries match on.
    pub fingerprint: u64,
    /// Human-readable explanation.
    pub message: String,
}

/// Static description of one rule, for `check rules` and escape
/// validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable id used in baselines and escape comments.
    pub id: &'static str,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// The determinism rule over hashed collections.
pub const HASH_COLLECTIONS: &str = "hash-collections";
/// The determinism rule over wall-clock sources.
pub const NONDETERMINISTIC_TIME: &str = "nondeterministic-time";
/// The no-panic rule for library code.
pub const PANIC_PATH: &str = "panic-path";
/// The documentation rule for the public facade and core theory crate.
pub const MISSING_DOCS: &str = "missing-docs";
/// Escape-comment hygiene (malformed, unjustified or unused escapes).
pub const ESCAPE_COMMENT: &str = "escape-comment";
/// The workspace lock-acquisition-order rule.
pub const LOCK_ORDER: &str = "lock-order";
/// The metric-name ↔ registry reconciliation rule.
pub const TELEMETRY_CONTRACT: &str = "telemetry-contract";
/// The CLI-flag ↔ EXPERIMENTS.md reconciliation rule.
pub const FLAG_DOC_DRIFT: &str = "flag-doc-drift";
/// The cross-crate nondeterminism-taint rule.
pub const DETERMINISM_TAINT: &str = "determinism-taint";

/// Every rule the engine knows, in reporting order.
pub const ALL_RULES: [RuleInfo; 9] = [
    RuleInfo {
        id: HASH_COLLECTIONS,
        summary: "forbid HashMap/HashSet (nondeterministic iteration order) outside tests",
    },
    RuleInfo {
        id: NONDETERMINISTIC_TIME,
        summary: "forbid Instant/SystemTime outside pipedepth-telemetry and the repro driver",
    },
    RuleInfo {
        id: PANIC_PATH,
        summary: "forbid unwrap()/expect()/panic!/todo!/unimplemented! in library code",
    },
    RuleInfo {
        id: MISSING_DOCS,
        summary: "require doc comments on pub items in the root facade and pipedepth-core",
    },
    RuleInfo {
        id: ESCAPE_COMMENT,
        summary: "escape comments must name a known rule, give a reason, and suppress something",
    },
    RuleInfo {
        id: LOCK_ORDER,
        summary: "forbid ABBA lock orders and guards held across join/wait/channel calls",
    },
    RuleInfo {
        id: TELEMETRY_CONTRACT,
        summary: "metric names must match telemetry.registry.toml in name, kind and owner",
    },
    RuleInfo {
        id: FLAG_DOC_DRIFT,
        summary: "CLI flags in binaries and EXPERIMENTS.md must agree in both directions",
    },
    RuleInfo {
        id: DETERMINISM_TAINT,
        summary: "forbid importing pub items whose signatures expose Instant/HashMap across crates",
    },
];

/// Whether `id` names a rule the engine knows.
pub fn is_known_rule(id: &str) -> bool {
    ALL_RULES.iter().any(|r| r.id == id)
}

/// Crates whose package name exempts them from the time rule (the
/// telemetry crate is the sanctioned clock owner).
const TIME_EXEMPT_CRATES: [&str; 1] = ["pipedepth-telemetry"];

/// Files exempt from the time rule by path: the `repro` driver stamps
/// wall-clock phase timings into its (maskable) manifest fields.
const TIME_EXEMPT_FILES: [&str; 1] = ["crates/experiments/src/bin/repro.rs"];

/// Whether the time rule (and time-based determinism taint) exempts
/// this crate/file pair.
pub(crate) fn is_time_exempt(crate_name: &str, rel_path: &str) -> bool {
    TIME_EXEMPT_CRATES.contains(&crate_name) || TIME_EXEMPT_FILES.contains(&rel_path)
}

/// Crates whose `pub` items must be documented.
const DOC_CRATES: [&str; 5] = [
    "pipedepth",
    "pipedepth-core",
    "pipedepth-sim",
    "pipedepth-serve",
    "pipedepth-analysis",
];

/// Everything the rules need to know about one file.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Package name from the owning `Cargo.toml`.
    pub crate_name: &'a str,
    /// Workspace-relative path, `/`-separated.
    pub rel_path: &'a str,
    /// The file's role in the package.
    pub role: FileRole,
}

/// Runs every applicable per-file rule over one lexed file, returning
/// raw (pre-escape-resolution) violations. The engine resolves escapes
/// afterwards, once cross-file violations for the file are also known.
///
/// Tests, benches and examples are exempt from every rule, escape
/// validation included — fixture files under `tests/` may contain
/// arbitrary (even deliberately malformed) source.
pub(crate) fn per_file_violations(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    in_test: &[bool],
) -> Vec<Violation> {
    if !matches!(ctx.role, FileRole::Lib | FileRole::Bin) {
        return Vec::new();
    }
    let mut raw = Vec::new();
    check_hash_collections(ctx, tokens, in_test, &mut raw);
    check_time_sources(ctx, tokens, in_test, &mut raw);
    if ctx.role == FileRole::Lib {
        check_panic_paths(ctx, tokens, in_test, &mut raw);
        if DOC_CRATES.contains(&ctx.crate_name) {
            check_missing_docs(ctx, tokens, in_test, &mut raw);
        }
    }
    raw
}

fn violation(ctx: &FileContext<'_>, rule: &'static str, line: u32, message: String) -> Violation {
    Violation {
        rule,
        file: ctx.rel_path.to_string(),
        line,
        fingerprint: 0,
        message,
    }
}

// ---------------------------------------------------------------------------
// Test-span detection
// ---------------------------------------------------------------------------

/// Marks every token that sits inside a `#[cfg(test)]`- or
/// `#[test]`-gated item (the item's attributes included), so rules and
/// the semantic model can exempt unit-test code embedded in library
/// files.
pub(crate) fn test_spans(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokenKind::Punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some((attr_end, is_test)) = parse_attribute(tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = attr_end;
        while j < tokens.len() && tokens[j].kind == TokenKind::Punct('#') {
            match parse_attribute(tokens, j) {
                Some((end, _)) => j = end,
                None => break,
            }
        }
        // Find the item body: the first `{` begins it; a `;` first means a
        // bodiless item (e.g. an out-of-line module) — nothing to mark.
        let mut body_end = j;
        let mut depth = 0u32;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].kind {
                TokenKind::Punct('{') => {
                    depth += 1;
                }
                TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        body_end = k + 1;
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    body_end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if k == tokens.len() {
            body_end = tokens.len();
        }
        for flag in &mut in_test[attr_start..body_end] {
            *flag = true;
        }
        i = body_end.max(attr_start + 1);
    }
    in_test
}

/// Parses the attribute starting at `#` token `i`. Returns the index one
/// past the closing `]` and whether the attribute gates test code
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]`).
fn parse_attribute(tokens: &[Token<'_>], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    // Inner attribute `#![…]` — same bracket structure.
    if j < tokens.len() && tokens[j].kind == TokenKind::Punct('!') {
        j += 1;
    }
    if j >= tokens.len() || tokens[j].kind != TokenKind::Punct('[') {
        return None;
    }
    let mut depth = 0u32;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut saw_cfg_or_bare_test = false;
    let mut first_ident: Option<&str> = None;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            TokenKind::Ident => {
                let text = tokens[j].text;
                if first_ident.is_none() {
                    first_ident = Some(text);
                }
                match text {
                    "test" => saw_test = true,
                    "not" => saw_not = true,
                    _ => {}
                }
            }
            _ => {}
        }
        j += 1;
    }
    if let Some(first) = first_ident {
        saw_cfg_or_bare_test = first == "cfg" || first == "test";
    }
    Some((j, saw_test && saw_cfg_or_bare_test && !saw_not))
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

fn check_hash_collections(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    for (i, tok) in tokens.iter().enumerate() {
        if in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text == "HashMap" || tok.text == "HashSet" {
            out.push(violation(
                ctx,
                HASH_COLLECTIONS,
                tok.line,
                format!(
                    "`{}` iterates in nondeterministic order; use the BTree equivalent \
                     or justify with an escape comment",
                    tok.text
                ),
            ));
        }
    }
}

fn check_time_sources(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    if is_time_exempt(ctx.crate_name, ctx.rel_path) {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if in_test[i] || tok.kind != TokenKind::Ident {
            continue;
        }
        if tok.text == "Instant" || tok.text == "SystemTime" {
            out.push(violation(
                ctx,
                NONDETERMINISTIC_TIME,
                tok.line,
                format!(
                    "`{}` reads the wall clock; route timing through \
                     `pipedepth_telemetry::Stopwatch` (only the telemetry crate and the \
                     repro driver may touch the clock)",
                    tok.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Panic-path rule
// ---------------------------------------------------------------------------

fn check_panic_paths(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    // Indices of non-comment tokens, for adjacency checks that must see
    // through interleaved comments.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for (c, &i) in code.iter().enumerate() {
        if in_test[i] || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let text = tokens[i].text;
        let prev = c.checked_sub(1).map(|p| tokens[code[p]].kind);
        let next = code.get(c + 1).map(|&n| tokens[n].kind);
        let hit = match text {
            "unwrap" | "expect" => {
                prev == Some(TokenKind::Punct('.')) && next == Some(TokenKind::Punct('('))
            }
            "panic" | "todo" | "unimplemented" => next == Some(TokenKind::Punct('!')),
            _ => false,
        };
        if hit {
            let display = match text {
                "unwrap" | "expect" => format!(".{text}()"),
                _ => format!("{text}!"),
            };
            out.push(violation(
                ctx,
                PANIC_PATH,
                tokens[i].line,
                format!(
                    "`{display}` can panic in library code; return a `Result`, make the \
                     path infallible, or justify with an escape comment"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Missing-docs rule
// ---------------------------------------------------------------------------

/// Item-introducing keywords that may follow `pub` (possibly after
/// `async`/`unsafe`/`extern "C"` qualifiers).
const ITEM_KEYWORDS: [&str; 12] = [
    "fn", "struct", "enum", "union", "trait", "type", "const", "static", "mod", "use", "macro",
    "impl",
];

fn check_missing_docs(
    ctx: &FileContext<'_>,
    tokens: &[Token<'_>],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    for (c, &i) in code.iter().enumerate() {
        if in_test[i] || tokens[i].kind != TokenKind::Ident || tokens[i].text != "pub" {
            continue;
        }
        // `pub(crate)` / `pub(super)` — restricted visibility is not
        // public API.
        if code.get(c + 1).map(|&n| tokens[n].kind) == Some(TokenKind::Punct('(')) {
            continue;
        }
        let Some(described) = described_item(tokens, &code, c) else {
            continue;
        };
        if !has_doc_comment(tokens, i) {
            out.push(violation(
                ctx,
                MISSING_DOCS,
                tokens[i].line,
                format!("public {described} lacks a doc comment (`///`)"),
            ));
        }
    }
}

/// Classifies what the `pub` at code-index `c` introduces; `None` when it
/// is not a documentable item (e.g. part of a macro body we can't parse).
fn described_item(tokens: &[Token<'_>], code: &[usize], c: usize) -> Option<String> {
    // Skip qualifier tokens to reach the item keyword.
    let mut k = c + 1;
    for _ in 0..4 {
        let &n = code.get(k)?;
        let tok = tokens[n];
        match tok.kind {
            TokenKind::Ident if ITEM_KEYWORDS.contains(&tok.text) => {
                let name = code
                    .get(k + 1)
                    .map(|&m| tokens[m])
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| format!(" `{}`", t.text))
                    .unwrap_or_default();
                return Some(format!("{}{}", tok.text, name));
            }
            TokenKind::Ident if matches!(tok.text, "async" | "unsafe" | "extern") => {
                k += 1;
            }
            TokenKind::Str => {
                // The ABI string of `extern "C"`.
                k += 1;
            }
            TokenKind::Ident => {
                // `pub name: Type` — a struct field.
                if code.get(k + 1).map(|&m| tokens[m].kind) == Some(TokenKind::Punct(':')) {
                    return Some(format!("field `{}`", tok.text));
                }
                return None;
            }
            _ => return None,
        }
    }
    None
}

/// Whether the item whose first token (the `pub`) sits at token index `i`
/// carries a doc comment, looking backwards over any attributes.
fn has_doc_comment(tokens: &[Token<'_>], i: usize) -> bool {
    let mut j = i;
    loop {
        if j == 0 {
            return false;
        }
        j -= 1;
        match tokens[j].kind {
            TokenKind::DocComment => {
                // `//!` documents the enclosing module, not this item.
                return !tokens[j].text.starts_with("//!") && !tokens[j].text.starts_with("/*!");
            }
            TokenKind::LineComment | TokenKind::BlockComment => continue,
            TokenKind::Punct(']') => {
                // Walk back over an attribute `#[…]`.
                let mut depth = 1u32;
                loop {
                    if j == 0 {
                        return false;
                    }
                    j -= 1;
                    match tokens[j].kind {
                        TokenKind::Punct(']') => depth += 1,
                        TokenKind::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                // Step back over the leading `#`.
                if j > 0 && tokens[j - 1].kind == TokenKind::Punct('#') {
                    j -= 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::lint_source;

    fn lint(role: FileRole, crate_name: &str, src: &str) -> Vec<Violation> {
        lint_source(crate_name, "crates/x/src/lib.rs", role, src)
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint(FileRole::Lib, "pipedepth-sim", src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let v = lint(FileRole::Lib, "pipedepth-sim", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, PANIC_PATH);
    }

    #[test]
    fn escape_requires_reason() {
        let src = "fn f() { x.unwrap(); } // analysis: allow(panic-path)\n";
        let v = lint(FileRole::Lib, "pipedepth-sim", src);
        assert!(v.iter().any(|v| v.rule == ESCAPE_COMMENT));
        assert!(
            v.iter().any(|v| v.rule == PANIC_PATH),
            "unjustified escape suppresses nothing"
        );
    }

    #[test]
    fn standalone_escape_covers_next_line() {
        let src = "// analysis: allow(hash-collections) — order never escapes this fn\n\
                   use std::collections::HashMap;\n";
        assert!(lint(FileRole::Lib, "pipedepth-sim", src).is_empty());
    }

    #[test]
    fn wrapped_escape_reason_still_covers_the_code_line() {
        let src = "// analysis: allow(hash-collections) — a justification long\n\
                   // enough to wrap onto a continuation comment line\n\
                   use std::collections::HashMap;\n";
        assert!(lint(FileRole::Lib, "pipedepth-sim", src).is_empty());
    }

    #[test]
    fn unused_escape_is_flagged() {
        let src = "// analysis: allow(panic-path) — stale justification\nfn f() {}\n";
        let v = lint(FileRole::Lib, "pipedepth-sim", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, ESCAPE_COMMENT);
    }
}
