//! Workspace discovery: which `.rs` files exist, in which crate, in which
//! role.
//!
//! Discovery is deliberately simple and deterministic: the root package
//! plus every `crates/*` package, with each package's `src/`, `tests/`,
//! `benches/` and `examples/` trees walked in sorted order. `vendor/`
//! (offline dependency stand-ins) and `target/` are never scanned.

use crate::rules::FileRole;
use crate::AnalysisError;
use std::path::{Path, PathBuf};

/// One source file scheduled for linting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Package name from the owning `Cargo.toml`.
    pub crate_name: String,
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// The file's role (library, binary, test, bench, example).
    pub role: FileRole,
}

/// Enumerates every lintable source file under the workspace root, in
/// deterministic (sorted) order.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, AnalysisError> {
    let mut packages: Vec<PathBuf> = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in sorted_dir(&crates_dir)? {
            if entry.join("Cargo.toml").is_file() {
                packages.push(entry);
            }
        }
    }
    let mut files = Vec::new();
    for pkg in packages {
        let name = package_name(&pkg.join("Cargo.toml"))?;
        collect_package(root, &pkg, &name, &mut files)?;
    }
    Ok(files)
}

/// Reads the `name = "…"` key of a manifest's `[package]` section.
pub fn package_name(manifest: &Path) -> Result<String, AnalysisError> {
    let text = read(manifest)?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let value = value.trim().trim_matches('"');
                return Ok(value.to_string());
            }
        }
    }
    Err(AnalysisError::Manifest {
        path: manifest.to_path_buf(),
        message: "no `name` key in [package]".to_string(),
    })
}

fn collect_package(
    root: &Path,
    pkg: &Path,
    name: &str,
    files: &mut Vec<SourceFile>,
) -> Result<(), AnalysisError> {
    let trees: [(&str, FileRole); 4] = [
        ("src", FileRole::Lib),
        ("tests", FileRole::Test),
        ("benches", FileRole::Bench),
        ("examples", FileRole::Example),
    ];
    for (dir, default_role) in trees {
        let base = pkg.join(dir);
        if !base.is_dir() {
            continue;
        }
        let mut found = Vec::new();
        walk_rs(&base, &mut found)?;
        found.sort();
        for abs in found {
            let rel = relative(root, &abs);
            // The workspace root directory contains the member crates and
            // vendored stubs; only the root package's own files belong to
            // it.
            if pkg == root && (rel.starts_with("crates/") || rel.starts_with("vendor/")) {
                continue;
            }
            let role = if default_role == FileRole::Lib && is_binary_root(pkg, &abs) {
                FileRole::Bin
            } else {
                default_role
            };
            files.push(SourceFile {
                crate_name: name.to_string(),
                rel_path: rel,
                abs_path: abs,
                role,
            });
        }
    }
    Ok(())
}

/// Whether a `src/` file is a binary crate root (`src/main.rs` or
/// anything under `src/bin/`).
fn is_binary_root(pkg: &Path, abs: &Path) -> bool {
    abs == pkg.join("src").join("main.rs") || abs.starts_with(pkg.join("src").join("bin"))
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalysisError> {
    for entry in sorted_dir(dir)? {
        if entry.is_dir() {
            let skip = entry
                .file_name()
                .is_some_and(|n| n == "target" || n == "vendor");
            if !skip {
                walk_rs(&entry, out)?;
            }
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, AnalysisError> {
    let rd = std::fs::read_dir(dir).map_err(|e| AnalysisError::io(dir, e))?;
    let mut entries = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| AnalysisError::io(dir, e))?;
        entries.push(entry.path());
    }
    entries.sort();
    Ok(entries)
}

/// Workspace-relative `/`-separated rendering of `abs`.
fn relative(root: &Path, abs: &Path) -> String {
    let rel = abs.strip_prefix(root).unwrap_or(abs);
    let parts: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    parts.join("/")
}

/// Reads a file, wrapping IO errors with the offending path.
pub fn read(path: &Path) -> Result<String, AnalysisError> {
    std::fs::read_to_string(path).map_err(|e| AnalysisError::io(path, e))
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` section.
pub fn find_root(start: &Path) -> Result<PathBuf, AnalysisError> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && read(&manifest)?.lines().any(|l| l.trim() == "[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(AnalysisError::Manifest {
                path: start.to_path_buf(),
                message: "no workspace root ([workspace] in Cargo.toml) above this directory"
                    .to_string(),
            });
        }
    }
}
