//! `pipedepth-analysis` — the workspace's own static-analysis gate.
//!
//! The repo's correctness story rests on byte-identical artifacts: the
//! masked `manifest.json` must be invariant across thread counts, slice-
//! and streaming-mode simulations must agree, golden figures must not
//! drift. Those guarantees rot silently when someone iterates a `HashMap`
//! into an artifact, reads `Instant::now()` on a result path, or adds an
//! `unwrap()` to a library crate. This crate mechanically checks the
//! source for exactly those hazards, the same way the workspace's
//! simulators are mechanically cross-checked against the paper's theory.
//!
//! The checks run over a workspace [`model`] — per-file item outlines,
//! the `use` graph, lock-acquisition facts, telemetry metric names and
//! CLI flag literals — built from a hand-rolled token [`lexer`]. On top
//! of it sit per-file rules and four cross-file rule families (see
//! [`rules`] for the full table):
//!
//! * **determinism** — no `HashMap`/`HashSet` outside tests, no
//!   `Instant`/`SystemTime` outside the telemetry crate and the `repro`
//!   driver, and (`determinism-taint`) no other crate importing helpers
//!   an exempted crate re-exports on top of those types;
//! * **concurrency** — `lock-order` flags inconsistent pairwise lock
//!   acquisition orders anywhere in the workspace and blocking calls
//!   (`.join()`, channel sends/receives, condvar waits) made while a
//!   guard is live;
//! * **contracts** — `telemetry-contract` reconciles every metric name
//!   emitted by the code against the checked-in
//!   `telemetry.registry.toml`, and `flag-doc-drift` reconciles CLI flag
//!   strings against `EXPERIMENTS.md`, both directions;
//! * **panic paths / docs** — no `unwrap()`/`expect()`/`panic!` in
//!   library code; every `pub` item of the documented crates carries a
//!   doc comment.
//!
//! Violations resolve against the committed [`baseline`]
//! (`analysis.baseline.toml`): recorded debt passes, new debt fails, and
//! paid-off debt fails too until the baseline is regenerated — a ratchet
//! that only tightens. Baseline entries are keyed by a fingerprint of
//! the offending line's text, so edits elsewhere in a file do not churn
//! the ledger. Individual sites can opt out with a justified escape
//! comment:
//!
//! ```text
//! // analysis: allow(hash-collections) — key order never escapes this fn
//! ```
//!
//! Run it as `cargo run -p pipedepth-analysis -- check` (CI runs exactly
//! this, with `--format github`), `-- check --update-baseline` after
//! paying debt down, or `-- metrics` to draft the telemetry registry.
//! Scanning is parallel (`--threads N`) with byte-identical output for
//! every thread count, and `--format json` emits a machine-readable
//! [`report`].

/// The fingerprint-keyed debt ledger and its ratchet semantics.
pub mod baseline;
/// Workspace scanning: parallel per-file phase plus cross-file rules.
pub mod engine;
mod escapes;
/// The hand-rolled Rust token lexer everything else is built on.
pub mod lexer;
/// The semantic model: item outlines, use graph, lock/metric/flag facts.
pub mod model;
/// The `telemetry.registry.toml` format and its canonical renderer.
pub mod registry;
/// JSON and GitHub-annotation renderings of a scan.
pub mod report;
/// Per-file rule implementations and the rule table.
pub mod rules;
/// Deterministic workspace discovery.
pub mod workspace;
mod xrules;

/// Baseline ledger types and the line-content fingerprint function.
pub use baseline::{fingerprint_line, Baseline, Ratchet, RatchetDelta};
/// Scan entry points, options and the in-memory workspace for fixtures.
pub use engine::{
    analyze_sources, analyze_workspace, analyze_workspace_with, lint_source, AnalysisReport,
    MemSource, MemWorkspace, ScanOptions, EXPERIMENTS_DOC, TELEMETRY_REGISTRY,
};
/// The semantic model the cross-file rule families run over.
pub use model::{
    BlockingCall, FileModel, FlagDef, FnFacts, ItemKind, ItemOutline, LockEdge, MetricKind,
    MetricUse, TaintedExport, UseImport, WorkspaceModel,
};
/// The parsed telemetry registry.
pub use registry::{Registry, RegistryEntry};
/// Machine-readable report renderers.
pub use report::{render_github, render_json};
/// Rule metadata and the violation type.
pub use rules::{FileRole, RuleInfo, Violation, ALL_RULES};

use std::fmt;
use std::path::{Path, PathBuf};

/// Errors surfaced by workspace discovery, file IO or baseline parsing.
#[derive(Debug)]
pub enum AnalysisError {
    /// An IO failure, annotated with the path involved.
    Io {
        /// The file or directory that failed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A manifest or baseline file that could not be understood.
    Manifest {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
}

impl AnalysisError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> Self {
        AnalysisError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    /// Re-annotates an error with the workspace-relative file being
    /// scanned when it occurred.
    pub(crate) fn while_scanning(self, rel_path: &str) -> Self {
        match self {
            AnalysisError::Io { source, .. } => AnalysisError::Io {
                path: PathBuf::from(rel_path),
                source,
            },
            other => other,
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            AnalysisError::Manifest { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Io { source, .. } => Some(source),
            AnalysisError::Manifest { .. } => None,
        }
    }
}
