//! `pipedepth-analysis` — the workspace's own static-analysis gate.
//!
//! The repo's correctness story rests on byte-identical artifacts: the
//! masked `manifest.json` must be invariant across thread counts, slice-
//! and streaming-mode simulations must agree, golden figures must not
//! drift. Those guarantees rot silently when someone iterates a `HashMap`
//! into an artifact, reads `Instant::now()` on a result path, or adds an
//! `unwrap()` to a library crate. This crate mechanically checks the
//! source for exactly those hazards, the same way the workspace's
//! simulators are mechanically cross-checked against the paper's theory.
//!
//! Three rule families (see [`rules`] for the full table):
//!
//! * **determinism** — no `HashMap`/`HashSet` outside tests, no
//!   `Instant`/`SystemTime` outside the telemetry crate and the `repro`
//!   driver;
//! * **panic paths** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in library code (tests, benches, binaries and
//!   examples are exempt);
//! * **docs** — every `pub` item of the root facade and `pipedepth-core`
//!   carries a doc comment.
//!
//! Violations resolve against the committed [`baseline`]
//! (`analysis.baseline.toml`): recorded debt passes, new debt fails, and
//! paid-off debt fails too until the baseline is regenerated — a ratchet
//! that only tightens. Individual sites can opt out with a justified
//! escape comment:
//!
//! ```text
//! // analysis: allow(hash-collections) — key order never escapes this fn
//! ```
//!
//! Run it as `cargo run -p pipedepth-analysis -- check` (CI runs exactly
//! this), or `-- check --update-baseline` after paying debt down.

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use baseline::{Baseline, Ratchet, RatchetDelta};
pub use engine::{analyze_workspace, lint_source, AnalysisReport};
pub use rules::{FileRole, RuleInfo, Violation, ALL_RULES};

use std::fmt;
use std::path::{Path, PathBuf};

/// Errors surfaced by workspace discovery, file IO or baseline parsing.
#[derive(Debug)]
pub enum AnalysisError {
    /// An IO failure, annotated with the path involved.
    Io {
        /// The file or directory that failed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A manifest or baseline file that could not be understood.
    Manifest {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        message: String,
    },
}

impl AnalysisError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> Self {
        AnalysisError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    /// Re-annotates an error with the workspace-relative file being
    /// scanned when it occurred.
    pub(crate) fn while_scanning(self, rel_path: &str) -> Self {
        match self {
            AnalysisError::Io { source, .. } => AnalysisError::Io {
                path: PathBuf::from(rel_path),
                source,
            },
            other => other,
        }
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            AnalysisError::Manifest { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Io { source, .. } => Some(source),
            AnalysisError::Manifest { .. } => None,
        }
    }
}
