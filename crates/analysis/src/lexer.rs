//! A lightweight Rust lexer — just enough structure for the rule engine.
//!
//! The lexer distinguishes identifiers, punctuation, string/char literals,
//! lifetimes and the three comment flavours (line, block, doc), tracking
//! the line number of every token. It deliberately does *not* build a
//! syntax tree: the rules pattern-match over the token stream, which keeps
//! the engine dependency-free and fast while still being immune to the
//! classic grep failure modes (`"HashMap"` inside a string literal,
//! `unwrap` inside a comment, `'a` lifetimes masquerading as chars).

/// The classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are stripped of `r#`).
    Ident,
    /// Numeric literal.
    Num,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'a'`).
    Char,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Non-doc line comment (`// …`).
    LineComment,
    /// Non-doc block comment (`/* … */`).
    BlockComment,
    /// Doc comment (`/// …`, `//! …`, `/** … */`, `/*! … */`).
    DocComment,
    /// A single punctuation character.
    Punct(char),
}

/// One token of a lexed source file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokenKind,
    /// The token's verbatim source text.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Whether this is the first token on its line.
    pub first_on_line: bool,
}

impl Token<'_> {
    /// Whether the token is any flavour of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
        )
    }
}

/// Lexes a source file into tokens. Unterminated literals or comments are
/// tolerated (the remainder of the file becomes one token): the engine
/// lints what it can rather than failing the build for malformed input —
/// `rustc` will reject such a file anyway.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        pos: 0,
        line: 1,
        last_token_line: 0,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    last_token_line: u32,
    tokens: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while let Some(c) = self.peek() {
            let start = self.pos;
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(start, line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(start, line),
                '"' => self.string(start, line),
                'r' | 'b' if self.raw_or_byte_literal(start, line) => {}
                '\'' => self.quote(start, line),
                _ if is_ident_start(c) => self.ident(start, line),
                _ if c.is_ascii_digit() => self.number(start, line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), start, line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let first_on_line = line != self.last_token_line;
        self.last_token_line = line;
        self.tokens.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
            first_on_line,
        });
    }

    fn line_comment(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text = &self.src[start..self.pos];
        // `////…` is an ordinary comment; `///` and `//!` are doc comments.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        let kind = if doc {
            TokenKind::DocComment
        } else {
            TokenKind::LineComment
        };
        self.push(kind, start, line);
    }

    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let text = &self.src[start..self.pos];
        // `/**/` and `/***…` are not doc comments; `/**…` and `/*!…` are.
        let doc = (text.starts_with("/**") && text.len() > 4 && !text.starts_with("/***"))
            || text.starts_with("/*!");
        let kind = if doc {
            TokenKind::DocComment
        } else {
            TokenKind::BlockComment
        };
        self.push(kind, start, line);
    }

    fn string(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, start, line);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` and raw
    /// identifiers (`r#type`). Returns false when the `r`/`b` is just the
    /// start of an ordinary identifier, leaving the cursor untouched.
    fn raw_or_byte_literal(&mut self, start: usize, line: u32) -> bool {
        let rest = &self.src[self.pos..];
        let (prefix_len, hashes) = match raw_literal_shape(rest) {
            Some(shape) => shape,
            None => return false,
        };
        if hashes == usize::MAX {
            // Raw identifier `r#ident`: skip the prefix, lex as identifier.
            self.pos += prefix_len;
            self.ident(start, line);
            return true;
        }
        if rest[prefix_len..].starts_with('\'') {
            // Byte char `b'x'`.
            self.pos += prefix_len;
            self.quote(start, line);
            return true;
        }
        // Consume prefix and opening quote.
        for _ in 0..prefix_len + 1 {
            self.bump();
        }
        let mut closer = String::from("\"");
        closer.extend(std::iter::repeat_n('#', hashes));
        if let Some(end) = self.src[self.pos..].find(&closer) {
            for _ in 0..self.src[self.pos..self.pos + end + closer.len()]
                .chars()
                .count()
            {
                self.bump();
            }
        } else {
            self.pos = self.src.len();
        }
        self.push(TokenKind::Str, start, line);
        true
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime/label).
    fn quote(&mut self, start: usize, line: u32) {
        self.bump(); // the quote (or `b` then quote)
        if self.peek() == Some('\'') && self.peek_at(1) == Some('\'') {
            // `'''` — a quote char literal written without escape; invalid
            // in Rust, consume two quotes defensively.
            self.bump();
            self.bump();
            self.push(TokenKind::Char, start, line);
            return;
        }
        match self.peek() {
            Some('\\') => {
                // Escaped char literal `'\n'`, `'\''`, `'\u{…}'`. The
                // escaped character is consumed unconditionally so the
                // quote in `'\''` does not read as the closer.
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, start, line);
            }
            Some(c) if is_ident_start(c) => {
                // Could be `'a'` (char) or `'a`/`'label` (lifetime).
                let mut probe = self.pos;
                while let Some(nc) = self.src[probe..].chars().next() {
                    if is_ident_continue(nc) {
                        probe += nc.len_utf8();
                    } else {
                        break;
                    }
                }
                if self.src[probe..].starts_with('\'') && probe == self.pos + c.len_utf8() {
                    // Exactly one ident char then a quote: char literal.
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Char, start, line);
                } else {
                    while self.pos < probe {
                        self.bump();
                    }
                    self.push(TokenKind::Lifetime, start, line);
                }
            }
            Some(_) => {
                // Non-ident char: `'+'` style char literal.
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, start, line);
            }
            None => self.push(TokenKind::Char, start, line),
        }
    }

    fn ident(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, start, line);
    }

    fn number(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek() {
            if is_ident_continue(c) {
                self.bump();
            } else if c == '.' {
                // Take the dot only when a digit follows (`1.5`, not `1.max`).
                match self.peek_at(1) {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, start, line);
    }
}

/// Recognises the prefix of a raw/byte literal at the start of `rest`.
/// Returns `(prefix_len, hash_count)`; `hash_count == usize::MAX` flags a
/// raw identifier. `None` means "not a literal prefix" (ordinary ident).
fn raw_literal_shape(rest: &str) -> Option<(usize, usize)> {
    let bytes = rest.as_bytes();
    let mut i = 0;
    let mut saw_b = false;
    let mut saw_r = false;
    while i < bytes.len() && i < 2 {
        match bytes[i] {
            b'b' if !saw_b && !saw_r => saw_b = true,
            b'r' if !saw_r => saw_r = true,
            _ => break,
        }
        i += 1;
    }
    if i == 0 {
        return None;
    }
    let mut hashes = 0;
    let mut j = i;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if saw_r && hashes > 0 {
        if j < bytes.len() && bytes[j] == b'"' {
            return Some((j, hashes)); // r#"…"# / br##"…"##
        }
        if hashes == 1 && !saw_b && j < bytes.len() && is_ident_start_byte(bytes[j]) {
            return Some((i + 1, usize::MAX)); // raw identifier r#ident
        }
        return None;
    }
    if j < bytes.len() && bytes[j] == b'"' {
        return Some((j, 0)); // r"…" / b"…" / br"…"
    }
    if saw_b && !saw_r && hashes == 0 && j < bytes.len() && bytes[j] == b'\'' {
        return Some((i, 0)); // byte char b'x'
    }
    None
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_start_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("use std::collections::HashMap;");
        assert_eq!(toks[0], (TokenKind::Ident, "use".into()));
        assert!(toks.contains(&(TokenKind::Ident, "HashMap".into())));
        assert_eq!(toks.last(), Some(&(TokenKind::Punct(';'), ";".into())));
    }

    #[test]
    fn string_contents_are_opaque() {
        let toks = kinds(r#"let s = "HashMap::unwrap()";"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Str));
    }

    #[test]
    fn raw_string_with_hashes() {
        let toks = kinds(r##"let s = r#"a "quoted" HashMap"# ;"##);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert_eq!(toks.last(), Some(&(TokenKind::Punct(';'), ";".into())));
    }

    #[test]
    fn comment_flavours() {
        let toks =
            kinds("/// doc\n//! inner\n// plain\n//// plain too\n/* block */\n/** blockdoc */ x");
        let doc = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::DocComment)
            .count();
        let plain = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::LineComment | TokenKind::BlockComment))
            .count();
        assert_eq!(doc, 3);
        assert_eq!(plain, 3);
    }

    #[test]
    fn nested_block_comment() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let esc = '\\''; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn unwrap_in_char_context_not_ident() {
        // The ident `unwrap` inside a string must not surface.
        let toks = kinds(r#"call("unwrap", 'u');"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn line_numbers_and_first_on_line() {
        let toks = lex("a\n  b c\n");
        assert_eq!(toks[0].line, 1);
        assert!(toks[0].first_on_line);
        assert_eq!(toks[1].line, 2);
        assert!(toks[1].first_on_line);
        assert_eq!(toks[2].line, 2);
        assert!(!toks[2].first_on_line);
    }

    #[test]
    fn raw_identifier_lexes_as_ident() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
    }

    #[test]
    fn numeric_method_calls_keep_the_dot() {
        let toks = kinds("let x = 1.0_f64.sqrt(); let y = t.0;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "sqrt"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t == "1.0_f64"));
    }
}
