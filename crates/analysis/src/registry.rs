//! The checked-in telemetry registry: `telemetry.registry.toml`.
//!
//! Every metric name the workspace emits must be declared here with its
//! instrument kind and owning crate; the `telemetry-contract` rule fails
//! the scan on drift in either direction (an unregistered name in code, a
//! dead registry entry, a kind mismatch, or an owner that never emits the
//! metric). The format is the same tiny hand-parsed TOML subset the
//! baseline uses:
//!
//! ```toml
//! version = 1
//!
//! [[metric]]
//! name = "serve.requests"
//! kind = "counter"
//! owner = "pipedepth-serve"
//! ```

use crate::model::{MetricKind, WorkspaceModel};
use crate::rules::FileRole;
use std::collections::{BTreeMap, BTreeSet};

/// One registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// The metric name as emitted.
    pub name: String,
    /// Instrument kind: `counter`, `gauge` or `histogram`.
    pub kind: String,
    /// The crate that owns (emits) the metric.
    pub owner: String,
    /// 1-based line of the entry's `name =` key in the registry file.
    pub line: u32,
}

/// The parsed registry, in file order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Registry {
    /// Declared metrics.
    pub entries: Vec<RegistryEntry>,
}

/// Parse state for one in-progress `[[metric]]` block:
/// (name + its line, kind, owner), each `None` until seen.
type PartialEntry = (Option<(String, u32)>, Option<String>, Option<String>);

impl Registry {
    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&RegistryEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Parses the registry file format. Unknown keys, duplicate names and
    /// unknown kinds are rejected.
    pub fn parse(text: &str) -> Result<Registry, String> {
        let mut entries: Vec<RegistryEntry> = Vec::new();
        let mut current: Option<PartialEntry> = None;
        let mut version_seen = false;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = (n + 1) as u32;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[metric]]" {
                commit(&mut current, &mut entries, lineno)?;
                current = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            match (&mut current, key) {
                (None, "version") => {
                    if value != "1" {
                        return Err(format!(
                            "line {lineno}: unsupported registry version {value}"
                        ));
                    }
                    version_seen = true;
                }
                (Some((name, _, _)), "name") => *name = Some((unquote(value, lineno)?, lineno)),
                (Some((_, kind, _)), "kind") => {
                    let k = unquote(value, lineno)?;
                    if !matches!(k.as_str(), "counter" | "gauge" | "histogram") {
                        return Err(format!(
                            "line {lineno}: kind must be counter, gauge or histogram, got `{k}`"
                        ));
                    }
                    *kind = Some(k);
                }
                (Some((_, _, owner)), "owner") => *owner = Some(unquote(value, lineno)?),
                _ => return Err(format!("line {lineno}: unexpected key `{key}`")),
            }
        }
        let last = text.lines().count() as u32;
        commit(&mut current, &mut entries, last)?;
        if !version_seen {
            return Err("registry is missing `version = 1`".to_string());
        }
        Ok(Registry { entries })
    }

    /// Renders the registry in canonical name-sorted form.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Telemetry metric registry for the pipedepth workspace.\n\
             # Every metric name emitted in code must be declared here (and vice\n\
             # versa) — the `telemetry-contract` rule fails the scan on drift.\n\
             # Regenerate a draft with: cargo run -p pipedepth-analysis -- metrics\n\
             version = 1\n",
        );
        let mut sorted: Vec<&RegistryEntry> = self.entries.iter().collect();
        sorted.sort_by(|a, b| a.name.cmp(&b.name));
        for e in sorted {
            out.push_str(&format!(
                "\n[[metric]]\nname = \"{}\"\nkind = \"{}\"\nowner = \"{}\"\n",
                e.name, e.kind, e.owner
            ));
        }
        out
    }

    /// Derives a registry draft from the scanned metric set: the kind of
    /// a name's first use (file order) is canonical, the owner is the
    /// lexicographically first emitting crate.
    pub fn suggested(model: &WorkspaceModel) -> Registry {
        let mut kinds: BTreeMap<&str, MetricKind> = BTreeMap::new();
        let mut owners: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for file in &model.files {
            if !matches!(file.role, FileRole::Lib | FileRole::Bin) {
                continue;
            }
            for m in &file.metrics {
                kinds.entry(m.name.as_str()).or_insert(m.kind);
                owners
                    .entry(m.name.as_str())
                    .or_default()
                    .insert(file.crate_name.as_str());
            }
        }
        let entries = kinds
            .iter()
            .map(|(&name, &kind)| RegistryEntry {
                name: name.to_string(),
                kind: kind.as_str().to_string(),
                owner: owners
                    .get(name)
                    .and_then(|s| s.iter().next())
                    .copied()
                    .unwrap_or("")
                    .to_string(),
                line: 0,
            })
            .collect();
        Registry { entries }
    }
}

fn commit(
    current: &mut Option<PartialEntry>,
    entries: &mut Vec<RegistryEntry>,
    lineno: u32,
) -> Result<(), String> {
    let Some((name, kind, owner)) = current.take() else {
        return Ok(());
    };
    match (name, kind, owner) {
        (Some((name, line)), Some(kind), Some(owner)) => {
            if entries.iter().any(|e| e.name == name) {
                return Err(format!("duplicate registry entry for `{name}`"));
            }
            entries.push(RegistryEntry {
                name,
                kind,
                owner,
                line,
            });
            Ok(())
        }
        _ => Err(format!(
            "entry ending near line {lineno} must set `name`, `kind` and `owner`"
        )),
    }
}

fn unquote(value: &str, lineno: u32) -> Result<String, String> {
    let v = value.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
    v.map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a quoted string, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let reg = Registry {
            entries: vec![RegistryEntry {
                name: "serve.requests".to_string(),
                kind: "counter".to_string(),
                owner: "pipedepth-serve".to_string(),
                line: 0,
            }],
        };
        let parsed = Registry::parse(&reg.render()).expect("round trip");
        assert_eq!(parsed.entries.len(), 1);
        assert_eq!(
            parsed.get("serve.requests").map(|e| e.kind.as_str()),
            Some("counter")
        );
    }

    #[test]
    fn rejects_bad_kind_and_duplicates() {
        assert!(Registry::parse(
            "version = 1\n[[metric]]\nname = \"x\"\nkind = \"timer\"\nowner = \"c\"\n"
        )
        .is_err());
        assert!(Registry::parse(
            "version = 1\n\
             [[metric]]\nname = \"x\"\nkind = \"counter\"\nowner = \"c\"\n\
             [[metric]]\nname = \"x\"\nkind = \"counter\"\nowner = \"c\"\n"
        )
        .is_err());
    }
}
