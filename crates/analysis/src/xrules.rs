//! Cross-file rule families over the [`crate::model::WorkspaceModel`].
//!
//! | id | enforces |
//! |----|----------|
//! | `lock-order` | a consistent workspace-wide lock acquisition order; no guard held across `.join()`/`wait`/channel calls |
//! | `telemetry-contract` | metric names in code ↔ `telemetry.registry.toml`, with stable kinds and true owners |
//! | `flag-doc-drift` | CLI flags in binaries ↔ flags documented in EXPERIMENTS.md |
//! | `determinism-taint` | no importing another crate's `pub` items whose signatures expose `Instant`/`HashMap`/… |
//!
//! Each check is a pure function of extracted facts; the engine attaches
//! escapes, fingerprints and ordering afterwards.

use crate::model::{is_time_taint, MetricUse, WorkspaceModel};
use crate::registry::Registry;
use crate::rules::{
    self, FileRole, Violation, DETERMINISM_TAINT, FLAG_DOC_DRIFT, LOCK_ORDER, TELEMETRY_CONTRACT,
};
use std::collections::{BTreeMap, BTreeSet};

fn violation(rule: &'static str, file: &str, line: u32, message: String) -> Violation {
    Violation {
        rule,
        file: file.to_string(),
        line,
        fingerprint: 0,
        message,
    }
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// Flags (a) lock pairs acquired in both orders anywhere in the
/// workspace — the classic ABBA deadlock shape — and (b) potentially
/// blocking calls made while a guard is lexically live.
pub(crate) fn check_lock_order(model: &WorkspaceModel) -> Vec<Violation> {
    let mut out = Vec::new();
    // (held, acquired) -> every site exhibiting that order.
    type Site<'a> = (&'a str, &'a str, u32); // file, fn, line
    let mut orders: BTreeMap<(&str, &str), Vec<Site<'_>>> = BTreeMap::new();
    for file in &model.files {
        for facts in &file.lock_facts {
            for e in &facts.edges {
                orders
                    .entry((e.held.as_str(), e.acquired.as_str()))
                    .or_default()
                    .push((file.rel_path.as_str(), facts.name.as_str(), e.line));
            }
        }
    }
    for (&(a, b), sites) in &orders {
        if a >= b {
            continue; // visit each unordered pair once, from its (a<b) side
        }
        let Some(reverse) = orders.get(&(b, a)) else {
            continue;
        };
        for &(file, fn_name, line) in sites {
            let &(rfile, rfn, rline) = &reverse[0];
            out.push(violation(
                LOCK_ORDER,
                file,
                line,
                format!(
                    "fn `{fn_name}` acquires `{b}` while holding `{a}`, but fn `{rfn}` \
                     ({rfile}:{rline}) acquires them in the opposite order — an ABBA \
                     deadlock shape; pick one order or justify with an escape comment"
                ),
            ));
        }
        for &(file, fn_name, line) in reverse {
            let &(rfile, rfn, rline) = &sites[0];
            out.push(violation(
                LOCK_ORDER,
                file,
                line,
                format!(
                    "fn `{fn_name}` acquires `{a}` while holding `{b}`, but fn `{rfn}` \
                     ({rfile}:{rline}) acquires them in the opposite order — an ABBA \
                     deadlock shape; pick one order or justify with an escape comment"
                ),
            ));
        }
    }
    for file in &model.files {
        for facts in &file.lock_facts {
            for b in &facts.blocking {
                out.push(violation(
                    LOCK_ORDER,
                    &file.rel_path,
                    b.line,
                    format!(
                        "fn `{}` calls `{}` while the guard of `{}` (acquired at line {}) \
                         is live; a thread needing that lock to make progress deadlocks — \
                         drop the guard first or justify with an escape comment",
                        facts.name, b.method, b.held, b.held_line
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// telemetry-contract
// ---------------------------------------------------------------------------

/// Reconciles metric names in code with the checked-in registry:
/// unregistered names, dead entries, kind conflicts (in code or vs the
/// registry) and owners that never emit the metric all fail.
pub(crate) fn check_telemetry_contract(
    model: &WorkspaceModel,
    registry: &Registry,
    registry_rel_path: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    // name -> uses in (file order, line order); plus the crates emitting it.
    let mut uses: BTreeMap<&str, Vec<(&str, &MetricUse)>> = BTreeMap::new();
    let mut emitters: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for file in &model.files {
        for m in &file.metrics {
            uses.entry(m.name.as_str())
                .or_default()
                .push((file.rel_path.as_str(), m));
            emitters
                .entry(m.name.as_str())
                .or_default()
                .insert(file.crate_name.as_str());
        }
    }
    for (&name, sites) in &uses {
        let (first_file, first) = sites[0];
        for &(file, m) in &sites[1..] {
            if m.kind != first.kind {
                out.push(violation(
                    TELEMETRY_CONTRACT,
                    file,
                    m.line,
                    format!(
                        "metric `{name}` is used as a {} here but as a {} at \
                         {first_file}:{} — one name, one instrument kind",
                        m.kind.as_str(),
                        first.kind.as_str(),
                        first.line
                    ),
                ));
            }
        }
        match registry.get(name) {
            None => out.push(violation(
                TELEMETRY_CONTRACT,
                first_file,
                first.line,
                format!(
                    "metric `{name}` is not registered in {registry_rel_path}; add a \
                     [[metric]] entry (draft one with `pipedepth-analysis metrics`)"
                ),
            )),
            Some(entry) => {
                if entry.kind != first.kind.as_str() {
                    out.push(violation(
                        TELEMETRY_CONTRACT,
                        first_file,
                        first.line,
                        format!(
                            "metric `{name}` is emitted as a {} but registered as a {} \
                             in {registry_rel_path}:{}",
                            first.kind.as_str(),
                            entry.kind,
                            entry.line
                        ),
                    ));
                }
                if !emitters
                    .get(name)
                    .map(|e| e.contains(entry.owner.as_str()))
                    .unwrap_or(false)
                {
                    out.push(violation(
                        TELEMETRY_CONTRACT,
                        registry_rel_path,
                        entry.line,
                        format!(
                            "registry owner `{}` never emits metric `{name}` (emitted by: {})",
                            entry.owner,
                            emitters
                                .get(name)
                                .map(|e| { e.iter().copied().collect::<Vec<_>>().join(", ") })
                                .unwrap_or_default()
                        ),
                    ));
                }
            }
        }
    }
    for entry in &registry.entries {
        if !uses.contains_key(entry.name.as_str()) {
            out.push(violation(
                TELEMETRY_CONTRACT,
                registry_rel_path,
                entry.line,
                format!(
                    "registry entry `{}` matches no metric in the scanned source — \
                     dead entry; remove it or restore the emission",
                    entry.name
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// flag-doc-drift
// ---------------------------------------------------------------------------

/// Cargo's own flags, which may legitimately appear in EXPERIMENTS.md
/// prose without any workspace binary defining them.
const CARGO_FLAGS: [&str; 9] = [
    "--release",
    "--workspace",
    "--no-default-features",
    "--no-run",
    "--no-deps",
    "--all-targets",
    "--check",
    "--quiet",
    "--features",
];

/// Flags every binary gets for free and nobody documents.
const UNDOCUMENTED_OK: [&str; 1] = ["--help"];

/// Reconciles CLI flag literals in binary roots with the flags mentioned
/// in EXPERIMENTS.md, in both directions.
pub(crate) fn check_flag_doc_drift(
    model: &WorkspaceModel,
    doc_text: &str,
    doc_rel_path: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    // flag -> first definition site across all binaries.
    let mut defined: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for file in &model.files {
        if file.role != FileRole::Bin {
            continue;
        }
        for f in &file.flags {
            defined
                .entry(f.flag.as_str())
                .or_insert((file.rel_path.as_str(), f.line));
        }
    }
    let documented = doc_flags(doc_text);
    for (&flag, &(file, line)) in &defined {
        if UNDOCUMENTED_OK.contains(&flag) {
            continue;
        }
        if !documented.contains_key(flag) {
            out.push(violation(
                FLAG_DOC_DRIFT,
                file,
                line,
                format!("CLI flag `{flag}` is not documented in {doc_rel_path}"),
            ));
        }
    }
    for (flag, &line) in &documented {
        if defined.contains_key(flag.as_str()) || CARGO_FLAGS.contains(&flag.as_str()) {
            continue;
        }
        out.push(violation(
            FLAG_DOC_DRIFT,
            doc_rel_path,
            line,
            format!("{doc_rel_path} documents flag `{flag}`, which no workspace binary defines"),
        ));
    }
    out
}

/// Extracts `--flag` mentions from the documentation, mapped to their
/// first line. On lines invoking cargo (`cargo run …`), only text after a
/// bare ` -- ` separator counts — flags before it belong to cargo, flags
/// after it to the workspace binary.
fn doc_flags(doc: &str) -> BTreeMap<String, u32> {
    let mut out: BTreeMap<String, u32> = BTreeMap::new();
    for (n, raw) in doc.lines().enumerate() {
        let line = (n + 1) as u32;
        let mut text = raw;
        if raw.contains("cargo ") {
            match raw.find(" -- ") {
                Some(pos) => text = &raw[pos + 4..],
                None => continue,
            }
        }
        let bytes = text.as_bytes();
        let mut i = 0usize;
        while i + 1 < bytes.len() {
            if bytes[i] == b'-' && bytes[i + 1] == b'-' {
                let before_ok =
                    i == 0 || !(bytes[i - 1] == b'-' || bytes[i - 1].is_ascii_alphanumeric());
                let mut j = i + 2;
                while j < bytes.len()
                    && (bytes[j].is_ascii_lowercase()
                        || bytes[j].is_ascii_digit()
                        || bytes[j] == b'-')
                {
                    j += 1;
                }
                let mut end = j;
                while end > i + 2 && bytes[end - 1] == b'-' {
                    end -= 1;
                }
                if before_ok && end > i + 2 {
                    if let Ok(flag) = std::str::from_utf8(&bytes[i..end]) {
                        out.entry(flag.to_string()).or_insert(line);
                    }
                }
                i = j.max(i + 2);
            } else {
                i += 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------------

/// Follows one hop of the use-graph: importing another crate's `pub`
/// item whose signature exposes a nondeterminism source re-introduces
/// the hazard the per-file rules would have caught locally.
pub(crate) fn check_determinism_taint(model: &WorkspaceModel) -> Vec<Violation> {
    let mut out = Vec::new();
    let workspace_crates: BTreeSet<&str> =
        model.files.iter().map(|f| f.crate_name.as_str()).collect();
    for file in &model.files {
        if !matches!(file.role, FileRole::Lib | FileRole::Bin) {
            continue;
        }
        for imp in &file.imports {
            let source_crate = imp.crate_ref().replace('_', "-");
            if source_crate == file.crate_name || !workspace_crates.contains(source_crate.as_str())
            {
                continue;
            }
            let leaf = imp.leaf();
            for export in model.tainted_of(&source_crate) {
                let matches_leaf = leaf == "*" || export.item == leaf;
                if !matches_leaf {
                    continue;
                }
                if is_time_taint(export.via)
                    && rules::is_time_exempt(&file.crate_name, &file.rel_path)
                {
                    continue;
                }
                out.push(violation(
                    DETERMINISM_TAINT,
                    &file.rel_path,
                    imp.line,
                    format!(
                        "`use {}` imports `{}`, whose public signature in `{source_crate}` \
                         exposes nondeterministic `{}` — tainted helpers must not cross \
                         into deterministic crates",
                        imp.path.join("::"),
                        export.item,
                        export.via
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_flags_respect_cargo_separator() {
        let doc = "Run `cargo run --release -p x -- --quick --out d`.\n\
                   The server takes `--port` and `--threads`.\n\
                   cargo build --workspace\n";
        let flags = doc_flags(doc);
        let names: Vec<&str> = flags.keys().map(String::as_str).collect();
        assert_eq!(names, ["--out", "--port", "--quick", "--threads"]);
    }

    #[test]
    fn doc_flags_ignore_em_dashes_and_separators() {
        let flags = doc_flags("a — b, and a bare -- separator, then --real-flag\n");
        let names: Vec<&str> = flags.keys().map(String::as_str).collect();
        assert_eq!(names, ["--real-flag"]);
    }
}
