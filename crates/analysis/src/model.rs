//! The workspace semantic model.
//!
//! [`FileModel::from_source`] distils one lexed file into fact tables:
//! an item outline (fns, types, impls, the `pub` surface), `use` imports,
//! per-fn lock-acquisition sequences, telemetry metric-name literals, CLI
//! flag literals, and taint-relevant `pub` signatures. [`WorkspaceModel`]
//! collects the per-file models of every scanned file in discovery order;
//! the cross-file rule families (the private `xrules` module) consume it.
//!
//! Extraction is purely lexical — the model trades type resolution for
//! zero dependencies, so facts key on conventions the workspace actually
//! follows: lock identity is the receiver field/method name before
//! `.lock()`, metric names are string literals passed to
//! `counter`/`gauge`/`histogram` (or declared in a `mod metric_names`
//! table), and CLI flags are whole string literals shaped like `--flag`.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{self, FileContext, FileRole};

/// What kind of declaration an [`ItemOutline`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free function or method).
    Fn,
    /// `struct`.
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `type` alias.
    TypeAlias,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `use` declaration.
    Use,
    /// `macro`/`macro_rules!` definition.
    Macro,
    /// `impl` block (named by its self type).
    Impl,
}

impl ItemKind {
    fn from_keyword(kw: &str) -> Option<ItemKind> {
        Some(match kw {
            "fn" => ItemKind::Fn,
            "struct" => ItemKind::Struct,
            "enum" => ItemKind::Enum,
            "union" => ItemKind::Union,
            "trait" => ItemKind::Trait,
            "type" => ItemKind::TypeAlias,
            "const" => ItemKind::Const,
            "static" => ItemKind::Static,
            "mod" => ItemKind::Mod,
            "use" => ItemKind::Use,
            "macro" | "macro_rules" => ItemKind::Macro,
            "impl" => ItemKind::Impl,
            _ => return None,
        })
    }

    /// Whether the item form may carry a brace-delimited body (as opposed
    /// to always terminating at a `;`, like `use` or `const`).
    fn takes_body(self) -> bool {
        !matches!(
            self,
            ItemKind::TypeAlias | ItemKind::Const | ItemKind::Static | ItemKind::Use
        )
    }
}

/// One item in a file's outline: top-level items plus items nested inside
/// `mod`/`impl`/`trait` bodies. Function bodies are opaque (nested fns and
/// closures are not outlined) and `#[cfg(test)]` items are skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemOutline {
    /// The item's kind.
    pub kind: ItemKind,
    /// The item's name; empty for `use` declarations and unreadable
    /// `impl` self types.
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// Whether the item is unrestricted `pub` (`pub(crate)` and friends
    /// count as private).
    pub is_pub: bool,
}

/// The telemetry instrument family a metric name was used with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Instantaneous gauge.
    Gauge,
    /// Value distribution.
    Histogram,
}

impl MetricKind {
    /// The registry spelling of the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    pub(crate) fn from_method(name: &str) -> Option<MetricKind> {
        Some(match name {
            "counter" => MetricKind::Counter,
            "gauge" => MetricKind::Gauge,
            "histogram" => MetricKind::Histogram,
            _ => return None,
        })
    }
}

/// One metric-name string literal observed in code: either passed
/// directly to `counter`/`gauge`/`histogram`, or declared in a
/// `mod metric_names` static name table (table entries count as
/// counters by workspace convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricUse {
    /// The metric name (unquoted literal).
    pub name: String,
    /// The instrument family it was used with.
    pub kind: MetricKind,
    /// 1-based line of the literal.
    pub line: u32,
}

/// One CLI flag string literal (`"--flag"`) found in a binary root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagDef {
    /// The flag, including the leading `--`.
    pub flag: String,
    /// 1-based line of the literal.
    pub line: u32,
}

/// One leaf of a `use` declaration (groups and globs expanded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Path segments as written; a trailing `*` segment marks a glob.
    pub path: Vec<String>,
    /// The `as` rename, when present.
    pub alias: Option<String>,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// Whether the declaration is an unrestricted `pub use` re-export.
    pub is_pub: bool,
}

impl UseImport {
    /// The first path segment — the crate (or `crate`/`self`/`std`…)
    /// the import resolves against.
    pub fn crate_ref(&self) -> &str {
        self.path.first().map(String::as_str).unwrap_or("")
    }

    /// The name the import binds locally: the rename if present,
    /// otherwise the last path segment (`*` for globs).
    pub fn leaf(&self) -> &str {
        self.alias
            .as_deref()
            .unwrap_or_else(|| self.path.last().map(String::as_str).unwrap_or(""))
    }
}

/// A `pub` item whose signature (or re-export path) mentions a
/// nondeterminism source — the seed facts for the `determinism-taint`
/// rule, which flags other crates importing such items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintedExport {
    /// The exported name as importers see it.
    pub item: String,
    /// The nondeterminism source that taints it (`Instant`,
    /// `SystemTime`, `HashMap` or `HashSet`).
    pub via: &'static str,
    /// 1-based line of the exporting item.
    pub line: u32,
}

/// One "lock B acquired while lock A's guard was live" observation
/// inside a single function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The lock already held (`crate::receiver` form).
    pub held: String,
    /// Line where the held guard was acquired.
    pub held_line: u32,
    /// The lock being acquired.
    pub acquired: String,
    /// Line of the new acquisition.
    pub line: u32,
}

/// A potentially blocking call (`.join()`, `.wait()`, channel
/// send/recv) made while a lock guard was lexically live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingCall {
    /// The call, e.g. `.join()`.
    pub method: String,
    /// 1-based line of the call.
    pub line: u32,
    /// The lock whose guard was held across the call.
    pub held: String,
    /// Line where that guard was acquired.
    pub held_line: u32,
}

/// Concurrency facts for one function: the lock-acquisition edges and
/// guard-across-blocking-call observations its body exhibits. Functions
/// with no such facts are omitted from the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnFacts {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Ordered lock-pair observations.
    pub edges: Vec<LockEdge>,
    /// Blocking calls made while holding a guard.
    pub blocking: Vec<BlockingCall>,
}

/// Everything the cross-file rules need to know about one source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileModel {
    /// Package name from the owning `Cargo.toml`.
    pub crate_name: String,
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The file's role in its package.
    pub role: FileRole,
    /// Item outline (empty for exempt roles).
    pub items: Vec<ItemOutline>,
    /// Expanded `use` leaves.
    pub imports: Vec<UseImport>,
    /// Metric-name literals.
    pub metrics: Vec<MetricUse>,
    /// CLI flag literals (binary roots only).
    pub flags: Vec<FlagDef>,
    /// `pub` items whose signatures expose nondeterminism sources.
    pub tainted_exports: Vec<TaintedExport>,
    /// Per-fn concurrency facts (only fns that have any).
    pub lock_facts: Vec<FnFacts>,
}

/// The per-file models of every scanned file, in discovery order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkspaceModel {
    /// One model per `Lib`/`Bin` source file.
    pub files: Vec<FileModel>,
}

/// Names that carry time-based nondeterminism through a signature.
pub(crate) const TAINTED_TIME: [&str; 2] = ["Instant", "SystemTime"];
/// Names that carry iteration-order nondeterminism through a signature.
pub(crate) const TAINTED_HASH: [&str; 2] = ["HashMap", "HashSet"];

fn taint_of(name: &str) -> Option<&'static str> {
    TAINTED_TIME
        .iter()
        .chain(TAINTED_HASH.iter())
        .find(|&&t| t == name)
        .copied()
}

/// Whether `via` is a time-based taint (subject to the time-rule
/// exemptions) rather than a hash-based one.
pub(crate) fn is_time_taint(via: &str) -> bool {
    TAINTED_TIME.contains(&via)
}

impl FileModel {
    /// Builds the model for one source string. Exempt roles (tests,
    /// benches, examples) yield an empty model.
    pub fn from_source(
        crate_name: &str,
        rel_path: &str,
        role: FileRole,
        source: &str,
    ) -> FileModel {
        let tokens = lex(source);
        let in_test = rules::test_spans(&tokens);
        let ctx = FileContext {
            crate_name,
            rel_path,
            role,
        };
        FileModel::from_tokens(&ctx, &tokens, &in_test)
    }

    pub(crate) fn from_tokens(
        ctx: &FileContext<'_>,
        tokens: &[Token<'_>],
        in_test: &[bool],
    ) -> FileModel {
        let mut model = FileModel {
            crate_name: ctx.crate_name.to_string(),
            rel_path: ctx.rel_path.to_string(),
            role: ctx.role,
            items: Vec::new(),
            imports: Vec::new(),
            metrics: Vec::new(),
            flags: Vec::new(),
            tainted_exports: Vec::new(),
            lock_facts: Vec::new(),
        };
        if !matches!(ctx.role, FileRole::Lib | FileRole::Bin) {
            return model;
        }
        let scan = Scan::new(tokens, in_test);
        let raw = scan.items();
        for item in &raw {
            model.items.push(ItemOutline {
                kind: item.kind,
                name: item.name.clone(),
                line: item.line,
                is_pub: item.is_pub,
            });
            match item.kind {
                ItemKind::Use => {
                    let start = scan.imports(item, &mut model.imports);
                    if item.is_pub {
                        for imp in &model.imports[start..] {
                            if let Some(via) = imp.path.iter().find_map(|s| taint_of(s)) {
                                model.tainted_exports.push(TaintedExport {
                                    item: imp.leaf().to_string(),
                                    via,
                                    line: imp.line,
                                });
                            }
                        }
                    }
                }
                ItemKind::Fn => {
                    if item.is_pub && ctx.role == FileRole::Lib {
                        scan.signature_taint(item, &mut model.tainted_exports);
                    }
                    if let Some(facts) = scan.lock_facts(ctx.crate_name, item) {
                        model.lock_facts.push(facts);
                    }
                }
                ItemKind::TypeAlias | ItemKind::Const | ItemKind::Static
                    if item.is_pub && ctx.role == FileRole::Lib =>
                {
                    scan.signature_taint(item, &mut model.tainted_exports);
                }
                ItemKind::Mod if item.name == "metric_names" => {
                    scan.metric_table(item, &mut model.metrics);
                }
                _ => {}
            }
        }
        scan.metric_calls(&mut model.metrics);
        if ctx.role == FileRole::Bin {
            scan.flag_literals(&mut model.flags);
        }
        model
    }
}

impl WorkspaceModel {
    /// Looks up the model of one file by workspace-relative path.
    pub fn file(&self, rel_path: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }

    /// All tainted exports of `crate_name` (dash-separated package name).
    pub(crate) fn tainted_of(&self, crate_name: &str) -> Vec<&TaintedExport> {
        self.files
            .iter()
            .filter(|f| f.crate_name == crate_name && f.role == FileRole::Lib)
            .flat_map(|f| f.tainted_exports.iter())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Token-level extraction
// ---------------------------------------------------------------------------

/// A parsed item with the token-index spans extraction needs.
struct RawItem {
    kind: ItemKind,
    name: String,
    line: u32,
    is_pub: bool,
    /// Code index of the introducing keyword.
    kw_c: usize,
    /// Code index one past the signature (the body `{` or the `;`).
    sig_end_c: usize,
    /// Code indices of the body braces, when the item has a body.
    body: Option<(usize, usize)>,
    /// Code index one past the whole item.
    end_c: usize,
}

struct Scan<'a, 'b> {
    toks: &'a [Token<'b>],
    /// Indices of non-comment tokens.
    code: Vec<usize>,
    in_test: &'a [bool],
}

/// Methods treated as lock acquisitions when called with zero arguments.
const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

impl<'a, 'b> Scan<'a, 'b> {
    fn new(toks: &'a [Token<'b>], in_test: &'a [bool]) -> Scan<'a, 'b> {
        let code = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        Scan {
            toks,
            code,
            in_test,
        }
    }

    fn tok(&self, c: usize) -> Option<&Token<'b>> {
        self.code.get(c).map(|&i| &self.toks[i])
    }

    fn ident(&self, c: usize) -> Option<&'b str> {
        self.tok(c)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
    }

    fn punct(&self, c: usize) -> Option<char> {
        match self.tok(c).map(|t| t.kind) {
            Some(TokenKind::Punct(ch)) => Some(ch),
            _ => None,
        }
    }

    fn line(&self, c: usize) -> u32 {
        self.tok(c).map(|t| t.line).unwrap_or(0)
    }

    fn is_test(&self, c: usize) -> bool {
        self.code.get(c).map(|&i| self.in_test[i]).unwrap_or(false)
    }

    /// Code index of the token matching the `open` delimiter at `open_c`.
    fn match_close(&self, open_c: usize, open: char, close: char) -> Option<usize> {
        let mut depth = 0i32;
        let mut c = open_c;
        while let Some(tok) = self.tok(c) {
            match tok.kind {
                TokenKind::Punct(p) if p == open => depth += 1,
                TokenKind::Punct(p) if p == close => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(c);
                    }
                }
                _ => {}
            }
            c += 1;
        }
        None
    }

    // -- item outline -------------------------------------------------------

    fn items(&self) -> Vec<RawItem> {
        let mut out = Vec::new();
        let mut c = 0usize;
        while c < self.code.len() {
            if !self.stmt_position(c) {
                c += 1;
                continue;
            }
            let Some(item) = self.parse_item(c) else {
                c += 1;
                continue;
            };
            if self.is_test(c) {
                c = item.end_c.max(c + 1);
                continue;
            }
            let next = match (item.kind, item.body) {
                // Descend into namespace bodies; their members are items.
                (ItemKind::Mod | ItemKind::Trait | ItemKind::Impl, Some((open, _))) => open + 1,
                _ => item.end_c,
            };
            out.push(item);
            c = next.max(c + 1);
        }
        out
    }

    /// Whether code index `c` can start an item: file start or right
    /// after `{`, `}`, `;` or a closing attribute `]`.
    fn stmt_position(&self, c: usize) -> bool {
        match c.checked_sub(1) {
            None => true,
            Some(p) => matches!(self.punct(p), Some('{') | Some('}') | Some(';') | Some(']')),
        }
    }

    fn parse_item(&self, c: usize) -> Option<RawItem> {
        let mut k = c;
        let mut is_pub = false;
        if self.ident(k) == Some("pub") {
            is_pub = true;
            k += 1;
            if self.punct(k) == Some('(') {
                k = self.match_close(k, '(', ')')? + 1;
                is_pub = false; // restricted visibility
            }
        }
        // Skip qualifier tokens to reach the item keyword.
        for _ in 0..4 {
            match self.ident(k) {
                Some("async") | Some("unsafe") | Some("default") => k += 1,
                Some("extern") => {
                    k += 1;
                    if self.tok(k).map(|t| t.kind) == Some(TokenKind::Str) {
                        k += 1;
                    }
                }
                Some("const")
                    if matches!(
                        self.ident(k + 1),
                        Some("fn") | Some("unsafe") | Some("async") | Some("extern")
                    ) =>
                {
                    k += 1;
                }
                _ => break,
            }
        }
        let kw = self.ident(k)?;
        let kind = ItemKind::from_keyword(kw)?;
        let line = self.line(k);
        let name = self.item_name(kind, kw, k);
        let mut scan_from = k + 1;
        if kw == "macro_rules" {
            // `macro_rules ! name { … }` — start the body scan at the name.
            scan_from = k + 3;
        }
        let (sig_end_c, body) = self.item_extent(kind, scan_from)?;
        let end_c = match body {
            Some((_, close)) => close + 1,
            None => sig_end_c,
        };
        Some(RawItem {
            kind,
            name,
            line,
            is_pub,
            kw_c: k,
            sig_end_c,
            body,
            end_c,
        })
    }

    fn item_name(&self, kind: ItemKind, kw: &str, k: usize) -> String {
        match kind {
            ItemKind::Use => String::new(),
            ItemKind::Impl => self.impl_name(k + 1),
            ItemKind::Macro if kw == "macro_rules" => {
                // `macro_rules` `!` `name`
                self.ident(k + 2).unwrap_or("").to_string()
            }
            _ => self.ident(k + 1).unwrap_or("").to_string(),
        }
    }

    /// The self type of an `impl` block: the last path ident before the
    /// body, restarting after `for` (`impl Trait for Type`).
    fn impl_name(&self, mut k: usize) -> String {
        let mut name = String::new();
        let mut guard = 0usize;
        while let Some(tok) = self.tok(k) {
            guard += 1;
            if guard > 512 {
                break;
            }
            match tok.kind {
                TokenKind::Punct('{') | TokenKind::Punct(';') => break,
                TokenKind::Punct('<') => {
                    // Skip a generic-argument group by angle counting.
                    let mut depth = 1i32;
                    k += 1;
                    while depth > 0 {
                        match self.punct(k) {
                            Some('<') => depth += 1,
                            Some('>') => depth -= 1,
                            None if self.tok(k).is_none() => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    continue;
                }
                TokenKind::Ident if tok.text == "where" => break,
                TokenKind::Ident if tok.text == "for" => name.clear(),
                TokenKind::Ident => name = tok.text.to_string(),
                _ => {}
            }
            k += 1;
        }
        name
    }

    /// Finds where the item starting after its keyword ends: the code
    /// index one past the terminating `;`, or the body brace pair.
    fn item_extent(&self, kind: ItemKind, from: usize) -> Option<(usize, Option<(usize, usize)>)> {
        let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
        let mut m = from;
        while let Some(tok) = self.tok(m) {
            match tok.kind {
                TokenKind::Punct('(') => par += 1,
                TokenKind::Punct(')') => par -= 1,
                TokenKind::Punct('[') => brk += 1,
                TokenKind::Punct(']') => brk -= 1,
                TokenKind::Punct('{') => {
                    if kind.takes_body() && par == 0 && brk == 0 && brc == 0 {
                        let close = self.match_close(m, '{', '}')?;
                        return Some((m, Some((m, close))));
                    }
                    brc += 1;
                }
                TokenKind::Punct('}') => brc -= 1,
                TokenKind::Punct(';') if par == 0 && brk == 0 && brc == 0 => {
                    return Some((m + 1, None));
                }
                _ => {}
            }
            m += 1;
        }
        // Unterminated item (malformed source): consume to EOF.
        Some((self.code.len(), None))
    }

    // -- use imports --------------------------------------------------------

    /// Expands the `use` item into leaf imports, appending to `out`;
    /// returns the index the new leaves start at.
    fn imports(&self, item: &RawItem, out: &mut Vec<UseImport>) -> usize {
        let start = out.len();
        let mut c = item.kw_c + 1;
        // Tolerate a leading `::`.
        while self.punct(c) == Some(':') {
            c += 1;
        }
        let end = item.sig_end_c;
        self.use_tree(&mut c, end, &Vec::new(), item, out);
        start
    }

    fn use_tree(
        &self,
        c: &mut usize,
        end: usize,
        prefix: &[String],
        item: &RawItem,
        out: &mut Vec<UseImport>,
    ) {
        let mut segs: Vec<String> = prefix.to_vec();
        let mut guard = 0usize;
        while *c < end {
            guard += 1;
            if guard > 4096 {
                return;
            }
            if let Some(text) = self.ident(*c) {
                segs.push(text.to_string());
                *c += 1;
                if self.punct(*c) == Some(':') && self.punct(*c + 1) == Some(':') {
                    *c += 2;
                    continue;
                }
                let alias = if self.ident(*c) == Some("as") {
                    let alias = self.ident(*c + 1).map(str::to_string);
                    *c += 2;
                    alias
                } else {
                    None
                };
                self.leaf(segs, alias, item, out);
                return;
            }
            match self.punct(*c) {
                Some('{') => {
                    *c += 1;
                    loop {
                        self.use_tree(c, end, &segs, item, out);
                        match self.punct(*c) {
                            Some(',') => *c += 1,
                            Some('}') => {
                                *c += 1;
                                return;
                            }
                            _ => return,
                        }
                    }
                }
                Some('*') => {
                    segs.push("*".to_string());
                    *c += 1;
                    self.leaf(segs, None, item, out);
                    return;
                }
                _ => return,
            }
        }
    }

    fn leaf(
        &self,
        path: Vec<String>,
        alias: Option<String>,
        item: &RawItem,
        out: &mut Vec<UseImport>,
    ) {
        if path.is_empty() {
            return;
        }
        out.push(UseImport {
            path,
            alias,
            line: item.line,
            is_pub: item.is_pub,
        });
    }

    // -- taint --------------------------------------------------------------

    /// Scans an item's signature span for nondeterminism-source names.
    /// Struct/enum bodies are deliberately excluded: private fields are
    /// legitimate encapsulation, but a `pub fn` returning `Instant` (or a
    /// `pub use` of it) hands the hazard to every importer.
    fn signature_taint(&self, item: &RawItem, out: &mut Vec<TaintedExport>) {
        for c in item.kw_c..item.sig_end_c {
            let Some(text) = self.ident(c) else { continue };
            if let Some(via) = taint_of(text) {
                out.push(TaintedExport {
                    item: item.name.clone(),
                    via,
                    line: item.line,
                });
                return;
            }
        }
    }

    // -- telemetry metrics --------------------------------------------------

    /// String literals passed to `counter`/`gauge`/`histogram` calls.
    fn metric_calls(&self, out: &mut Vec<MetricUse>) {
        for c in 0..self.code.len() {
            if self.is_test(c) {
                continue;
            }
            let Some(text) = self.ident(c) else { continue };
            let Some(kind) = MetricKind::from_method(text) else {
                continue;
            };
            if self.punct(c + 1) != Some('(') {
                continue;
            }
            let Some(lit) = self.tok(c + 2).filter(|t| t.kind == TokenKind::Str) else {
                continue;
            };
            out.push(MetricUse {
                name: unquote(lit.text),
                kind,
                line: lit.line,
            });
        }
    }

    /// Every string literal inside a `mod metric_names` body — the
    /// workspace's static name-table convention; entries are counters.
    fn metric_table(&self, item: &RawItem, out: &mut Vec<MetricUse>) {
        let Some((open, close)) = item.body else {
            return;
        };
        for c in open + 1..close {
            if self.is_test(c) {
                continue;
            }
            if let Some(lit) = self.tok(c).filter(|t| t.kind == TokenKind::Str) {
                out.push(MetricUse {
                    name: unquote(lit.text),
                    kind: MetricKind::Counter,
                    line: lit.line,
                });
            }
        }
    }

    // -- CLI flags ----------------------------------------------------------

    /// Whole string literals shaped like `--flag` in a binary root.
    fn flag_literals(&self, out: &mut Vec<FlagDef>) {
        for c in 0..self.code.len() {
            if self.is_test(c) {
                continue;
            }
            let Some(lit) = self.tok(c).filter(|t| t.kind == TokenKind::Str) else {
                continue;
            };
            let text = unquote(lit.text);
            if is_cli_flag(&text) {
                out.push(FlagDef {
                    flag: text,
                    line: lit.line,
                });
            }
        }
    }

    // -- lock facts ---------------------------------------------------------

    /// Walks a fn body tracking lexically live lock guards; records
    /// acquisition-order edges and guards held across blocking calls.
    fn lock_facts(&self, crate_name: &str, item: &RawItem) -> Option<FnFacts> {
        let (open, close) = item.body?;
        struct Guard {
            lock: String,
            var: Option<String>,
            line: u32,
            depth: i32,
            /// Guards of un-bound (temporary) acquisitions die at the
            /// next `;` of their block rather than the block's end.
            stmt_temp: bool,
        }
        let mut active: Vec<Guard> = Vec::new();
        let mut edges = Vec::new();
        let mut blocking = Vec::new();
        let mut depth = 1i32;
        let mut pending_let: Option<String> = None;
        let mut c = open + 1;
        while c < close {
            let Some(tok) = self.tok(c) else { break };
            match tok.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    active.retain(|g| g.depth <= depth);
                }
                TokenKind::Punct(';') => {
                    active.retain(|g| !(g.stmt_temp && g.depth == depth));
                    pending_let = None;
                }
                TokenKind::Ident if tok.text == "let" => {
                    let mut n = c + 1;
                    if self.ident(n) == Some("mut") {
                        n += 1;
                    }
                    pending_let = self.ident(n).map(str::to_string);
                }
                TokenKind::Ident
                    if tok.text == "drop"
                        && self.punct(c + 1) == Some('(')
                        && self.punct(c + 3) == Some(')') =>
                {
                    if let Some(var) = self.ident(c + 2) {
                        active.retain(|g| g.var.as_deref() != Some(var));
                    }
                }
                TokenKind::Ident
                    if c > 0
                        && self.punct(c - 1) == Some('.')
                        && self.punct(c + 1) == Some('(') =>
                {
                    let zero_arg = self.punct(c + 2) == Some(')');
                    if LOCK_METHODS.contains(&tok.text) && zero_arg {
                        let lock = format!("{crate_name}::{}", self.receiver(c));
                        for g in &active {
                            if g.lock != lock {
                                edges.push(LockEdge {
                                    held: g.lock.clone(),
                                    held_line: g.line,
                                    acquired: lock.clone(),
                                    line: tok.line,
                                });
                            }
                        }
                        active.push(Guard {
                            lock,
                            var: pending_let.clone(),
                            line: tok.line,
                            depth,
                            stmt_temp: pending_let.is_none(),
                        });
                    } else if let Some(call) = blocking_call(tok.text, zero_arg) {
                        // Condvar waits consume (and re-acquire) the guard
                        // passed as their first argument — only *other*
                        // held guards are a hazard across them.
                        let consumed = if matches!(tok.text, "wait" | "wait_timeout") {
                            self.ident(c + 2).map(str::to_string)
                        } else {
                            None
                        };
                        for g in &active {
                            if g.var.is_some() && g.var == consumed {
                                continue;
                            }
                            blocking.push(BlockingCall {
                                method: call.to_string(),
                                line: tok.line,
                                held: g.lock.clone(),
                                held_line: g.line,
                            });
                        }
                    }
                }
                _ => {}
            }
            c += 1;
        }
        if edges.is_empty() && blocking.is_empty() {
            return None;
        }
        Some(FnFacts {
            name: item.name.clone(),
            line: item.line,
            edges,
            blocking,
        })
    }

    /// The receiver ident of the method call at code index `c` (the
    /// token chain before the `.`), seeing through one call or index
    /// suffix: `self.state.lock()` → `state`, `self.shard(k).lock()` →
    /// `shard`.
    fn receiver(&self, c: usize) -> String {
        let Some(before_dot) = c.checked_sub(2) else {
            return "<expr>".to_string();
        };
        let mut r = before_dot;
        // `.lock()?` style chains interpose a `?` before the dot.
        if self.punct(r) == Some('?') {
            let Some(p) = r.checked_sub(1) else {
                return "<expr>".to_string();
            };
            r = p;
        }
        match self.punct(r) {
            Some(')') => match self.open_of(r, '(', ')') {
                Some(open) if open > 0 => self.ident(open - 1).unwrap_or("<expr>").to_string(),
                _ => "<expr>".to_string(),
            },
            Some(']') => match self.open_of(r, '[', ']') {
                Some(open) if open > 0 => self.ident(open - 1).unwrap_or("<expr>").to_string(),
                _ => "<expr>".to_string(),
            },
            _ => self.ident(r).unwrap_or("<expr>").to_string(),
        }
    }

    /// Code index of the opening delimiter matching the closer at `c`.
    fn open_of(&self, c: usize, open: char, close: char) -> Option<usize> {
        let mut depth = 0i32;
        let mut k = c;
        loop {
            match self.punct(k) {
                Some(p) if p == close => depth += 1,
                Some(p) if p == open => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
            k = k.checked_sub(1)?;
        }
    }
}

/// Potentially blocking method calls the lock-order rule watches.
/// `join` only counts with zero arguments (so `PathBuf::join(p)` and
/// `Vec::join(sep)` do not match).
fn blocking_call(name: &str, zero_arg: bool) -> Option<&'static str> {
    Some(match name {
        "join" if zero_arg => ".join()",
        "wait" => ".wait(…)",
        "wait_timeout" => ".wait_timeout(…)",
        "send" => ".send(…)",
        "recv" => ".recv(…)",
        "recv_timeout" => ".recv_timeout(…)",
        _ => return None,
    })
}

/// The inner text of a string-literal token (any flavour).
fn unquote(text: &str) -> String {
    let Some(first) = text.find('"') else {
        return String::new();
    };
    let Some(last) = text.rfind('"') else {
        return String::new();
    };
    if last > first {
        text[first + 1..last].to_string()
    } else {
        String::new()
    }
}

/// Whether `text` (a whole string literal) is a long CLI flag:
/// `--` followed by lowercase alphanumerics and dashes.
fn is_cli_flag(text: &str) -> bool {
    let Some(body) = text.strip_prefix("--") else {
        return false;
    };
    !body.is_empty()
        && body.starts_with(|c: char| c.is_ascii_lowercase() || c.is_ascii_digit())
        && !body.ends_with('-')
        && body
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::from_source(
            "pipedepth-serve",
            "crates/serve/src/x.rs",
            FileRole::Lib,
            src,
        )
    }

    #[test]
    fn outlines_nested_items_but_not_fn_bodies() {
        let src = "pub struct S;\nimpl S {\n    pub fn m(&self) { let inner = 1; }\n}\n\
                   mod inner {\n    pub(crate) fn helper() {}\n}\n";
        let m = model(src);
        let names: Vec<(&str, ItemKind, bool)> = m
            .items
            .iter()
            .map(|i| (i.name.as_str(), i.kind, i.is_pub))
            .collect();
        assert_eq!(
            names,
            [
                ("S", ItemKind::Struct, true),
                ("S", ItemKind::Impl, false),
                ("m", ItemKind::Fn, true),
                ("inner", ItemKind::Mod, false),
                ("helper", ItemKind::Fn, false),
            ]
        );
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let m = model("impl<T: Clone> Evaluator for Analytic<T> { fn go(&self) {} }\n");
        assert_eq!(m.items[0].name, "Analytic");
    }

    #[test]
    fn use_groups_expand_to_leaves() {
        let m = model("use std::sync::{Mutex, atomic::{AtomicUsize, Ordering as O}};\n");
        let leaves: Vec<&str> = m.imports.iter().map(|i| i.leaf()).collect();
        assert_eq!(leaves, ["Mutex", "AtomicUsize", "O"]);
        assert_eq!(m.imports[2].path, ["std", "sync", "atomic", "Ordering"]);
    }

    #[test]
    fn pub_use_of_instant_is_a_tainted_export() {
        let m = model("pub use std::time::Instant as Clock;\n");
        assert_eq!(m.tainted_exports.len(), 1);
        assert_eq!(m.tainted_exports[0].item, "Clock");
        assert_eq!(m.tainted_exports[0].via, "Instant");
    }

    #[test]
    fn pub_fn_returning_hashmap_is_tainted_but_private_struct_field_is_not() {
        let src = "use std::collections::HashMap;\n\
                   pub fn build() -> HashMap<u32, u32> { HashMap::new() }\n\
                   pub struct W(std::time::Instant);\n";
        let m = model(src);
        let items: Vec<&str> = m.tainted_exports.iter().map(|t| t.item.as_str()).collect();
        assert_eq!(items, ["build"], "tuple-struct bodies are not signatures");
    }

    #[test]
    fn lock_edges_record_nesting_order() {
        let src =
            "fn f(a: &M, b: &M) {\n    let ga = a.inner.lock();\n    let gb = b.other.lock();\n}\n";
        let m = model(src);
        let e = &m.lock_facts[0].edges[0];
        assert_eq!(e.held, "pipedepth-serve::inner");
        assert_eq!(e.acquired, "pipedepth-serve::other");
    }

    #[test]
    fn guard_scope_ends_at_block_close_and_drop() {
        let src = "fn f(a: &M, b: &M) {\n    { let ga = a.inner.lock(); }\n    let gb = b.other.lock();\n}\n\
                   fn g(a: &M, b: &M) {\n    let ga = a.inner.lock();\n    drop(ga);\n    let gb = b.other.lock();\n}\n";
        let m = model(src);
        assert!(
            m.lock_facts.is_empty(),
            "no guard overlaps: {:?}",
            m.lock_facts
        );
    }

    #[test]
    fn join_under_guard_is_blocking_but_pathbuf_join_is_not() {
        let src = "fn f(a: &M, h: H, p: &std::path::Path) {\n    let g = a.inner.lock();\n    let q = p.join(\"x\");\n    h.join();\n}\n";
        let m = model(src);
        let b = &m.lock_facts[0].blocking;
        assert_eq!(b.len(), 1, "{b:?}");
        assert_eq!(b[0].method, ".join()");
        assert_eq!(b[0].held, "pipedepth-serve::inner");
    }

    #[test]
    fn condvar_wait_consumes_its_guard_argument() {
        let src = "fn f(&self) {\n    let mut state = self.state.lock();\n    \
                   while !done {\n        state = self.cv.wait(state);\n    }\n}\n";
        let m = model(src);
        assert!(
            m.lock_facts.is_empty(),
            "waiting on the guard you pass in is the sanctioned pattern: {:?}",
            m.lock_facts
        );
    }

    #[test]
    fn condvar_wait_flags_other_held_guards() {
        let src = "fn f(&self) {\n    let g = self.other.lock();\n    let mut state = self.state.lock();\n    \
                   state = self.cv.wait(state);\n}\n";
        let m = model(src);
        let b = &m.lock_facts[0].blocking;
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].held, "pipedepth-serve::other");
    }

    #[test]
    fn metric_calls_and_name_tables_are_extracted() {
        let src = "pub(crate) mod metric_names {\n    pub(crate) const T: [&str; 1] = [\"sim.x.events\"];\n}\n\
                   fn f(t: &T) {\n    t.counter(\"sim.instructions\", 1);\n    t.gauge(\"sim.mips\", 2.0);\n}\n";
        let m = model(src);
        let got: Vec<(&str, MetricKind)> = m
            .metrics
            .iter()
            .map(|u| (u.name.as_str(), u.kind))
            .collect();
        assert_eq!(
            got,
            [
                ("sim.x.events", MetricKind::Counter),
                ("sim.instructions", MetricKind::Counter),
                ("sim.mips", MetricKind::Gauge),
            ]
        );
    }

    #[test]
    fn flags_only_match_whole_flag_literals_in_binaries() {
        let src = "fn main() {\n    let _ = (\"--quick\", \"--out\", \"try --quick first\", \"--\", \"--Bad\");\n}\n";
        let m = FileModel::from_source(
            "pipedepth-experiments",
            "crates/experiments/src/bin/x.rs",
            FileRole::Bin,
            src,
        );
        let flags: Vec<&str> = m.flags.iter().map(|f| f.flag.as_str()).collect();
        assert_eq!(flags, ["--quick", "--out"]);
        let lib = model(src);
        assert!(lib.flags.is_empty(), "flags only come from binary roots");
    }

    #[test]
    fn cfg_test_items_are_invisible() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n    fn t(a: &M) { let g = a.x.lock(); a.h.join(); }\n}\n";
        let m = model(src);
        assert!(m.items.is_empty());
        assert!(m.lock_facts.is_empty());
    }
}
