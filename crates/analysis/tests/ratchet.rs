//! The ratchet contract: recorded debt passes, new debt fails, paid-off
//! debt fails until the baseline is regenerated, regeneration is a
//! parse/render round trip — and, because grants are keyed by the
//! offending line's content fingerprint, edits elsewhere in a file do
//! not churn the ledger.

use pipedepth_analysis::{
    fingerprint_line, lint_source, AnalysisReport, Baseline, FileRole, WorkspaceModel,
};

fn report_of(sources: &[(&str, &str)]) -> AnalysisReport {
    let mut violations = Vec::new();
    for (file, src) in sources {
        violations.extend(lint_source("pipedepth-trace", file, FileRole::Lib, src));
    }
    AnalysisReport {
        files_scanned: sources.len(),
        violations,
        model: WorkspaceModel::default(),
    }
}

const DIRTY: &str = "use std::collections::HashMap;\n";

#[test]
fn recorded_debt_passes() {
    let report = report_of(&[("crates/sim/src/a.rs", DIRTY)]);
    let recorded = report.to_baseline();
    assert_eq!(recorded.total(), 1);
    assert!(report.ratchet(&recorded).is_clean());
}

#[test]
fn new_debt_fails_even_in_an_already_dirty_file() {
    let before = report_of(&[("crates/sim/src/a.rs", DIRTY)]);
    let recorded = before.to_baseline();
    let two = "use std::collections::HashMap;\nuse std::collections::HashSet;\n";
    let after = report_of(&[("crates/sim/src/a.rs", two)]);
    let ratchet = after.ratchet(&recorded);
    assert_eq!(ratchet.new.len(), 1, "the HashSet line is a new grant key");
    assert_eq!(ratchet.new[0].actual, 1);
    assert_eq!(ratchet.new[0].recorded, 0);
    assert!(ratchet.stale.is_empty());
}

#[test]
fn paid_off_debt_is_stale_until_regenerated() {
    let before = report_of(&[("crates/sim/src/a.rs", DIRTY)]);
    let recorded = before.to_baseline();
    let after = report_of(&[("crates/sim/src/a.rs", "pub fn clean() {}\n")]);
    let ratchet = after.ratchet(&recorded);
    assert!(ratchet.new.is_empty());
    assert_eq!(ratchet.stale.len(), 1, "the grant must be revoked");
    // Regenerating (what `check --update-baseline` writes) makes it clean.
    let regenerated = after.to_baseline();
    assert!(after.ratchet(&regenerated).is_clean());
    assert!(regenerated.total() < recorded.total(), "the ratchet moved");
}

#[test]
fn debt_moving_between_files_is_both_new_and_stale() {
    let recorded = report_of(&[("crates/sim/src/a.rs", DIRTY)]).to_baseline();
    let moved = report_of(&[("crates/sim/src/b.rs", DIRTY)]);
    let ratchet = moved.ratchet(&recorded);
    assert_eq!(ratchet.new.len(), 1);
    assert_eq!(ratchet.stale.len(), 1);
}

#[test]
fn inserting_lines_above_a_baselined_violation_does_not_churn() {
    let recorded = report_of(&[("crates/sim/src/a.rs", DIRTY)]).to_baseline();
    // The violation drifts from line 1 to line 3; its text is unchanged,
    // so the fingerprint-keyed grant still covers it.
    let shifted = "//! Module docs.\npub fn clean() {}\nuse std::collections::HashMap;\n";
    let after = report_of(&[("crates/sim/src/a.rs", shifted)]);
    assert_eq!(after.violations[0].line, 3, "the violation really moved");
    assert!(
        after.ratchet(&recorded).is_clean(),
        "a pure line shift must not invalidate the grant"
    );
}

#[test]
fn changing_the_offending_line_text_is_new_debt() {
    let recorded = report_of(&[("crates/sim/src/a.rs", DIRTY)]).to_baseline();
    // Same file, same rule, same line number — different line text.
    let rewritten = "use std::collections::HashMap as Cache;\n";
    let after = report_of(&[("crates/sim/src/a.rs", rewritten)]);
    let ratchet = after.ratchet(&recorded);
    assert_eq!(ratchet.new.len(), 1, "a rewritten line is a new grant key");
    assert_eq!(ratchet.stale.len(), 1, "and the old grant is revoked");
}

#[test]
fn violations_carry_their_lines_content_fingerprint() {
    let report = report_of(&[("crates/sim/src/a.rs", DIRTY)]);
    assert_eq!(
        report.violations[0].fingerprint,
        fingerprint_line("use std::collections::HashMap;")
    );
}

#[test]
fn baseline_file_round_trips_through_render_and_parse() {
    let report = report_of(&[
        ("crates/sim/src/a.rs", DIRTY),
        (
            "crates/sim/src/b.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    let baseline = report.to_baseline();
    let parsed = Baseline::parse(&baseline.render()).expect("canonical render parses");
    assert_eq!(parsed, baseline);
    assert!(report.ratchet(&parsed).is_clean());
}

#[test]
fn legacy_count_keyed_baselines_are_rejected_with_guidance() {
    let legacy = "version = 1\n\n[[grant]]\nfile = \"crates/sim/src/a.rs\"\n\
                  rule = \"hash-collections\"\ncount = 1\n";
    let err = Baseline::parse(legacy).expect_err("v1 must not parse");
    assert!(err.contains("legacy"), "unhelpful error: {err}");
    assert!(err.contains("--update-baseline"), "unhelpful error: {err}");
}
