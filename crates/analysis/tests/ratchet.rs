//! The ratchet contract: recorded debt passes, new debt fails, paid-off
//! debt fails until the baseline is regenerated, and regeneration is a
//! parse/render round trip.

use pipedepth_analysis::{lint_source, AnalysisReport, Baseline, FileRole};

fn report_of(sources: &[(&str, &str)]) -> AnalysisReport {
    let mut violations = Vec::new();
    for (file, src) in sources {
        violations.extend(lint_source("pipedepth-trace", file, FileRole::Lib, src));
    }
    AnalysisReport {
        files_scanned: sources.len(),
        violations,
    }
}

const DIRTY: &str = "use std::collections::HashMap;\n";

#[test]
fn recorded_debt_passes() {
    let report = report_of(&[("crates/sim/src/a.rs", DIRTY)]);
    let recorded = report.to_baseline();
    assert_eq!(recorded.total(), 1);
    assert!(report.ratchet(&recorded).is_clean());
}

#[test]
fn new_debt_fails_even_in_an_already_dirty_file() {
    let before = report_of(&[("crates/sim/src/a.rs", DIRTY)]);
    let recorded = before.to_baseline();
    let two = "use std::collections::HashMap;\nuse std::collections::HashSet;\n";
    let after = report_of(&[("crates/sim/src/a.rs", two)]);
    let ratchet = after.ratchet(&recorded);
    assert_eq!(ratchet.new.len(), 1);
    assert_eq!(ratchet.new[0].actual, 2);
    assert_eq!(ratchet.new[0].recorded, 1);
    assert!(ratchet.stale.is_empty());
}

#[test]
fn paid_off_debt_is_stale_until_regenerated() {
    let before = report_of(&[("crates/sim/src/a.rs", DIRTY)]);
    let recorded = before.to_baseline();
    let after = report_of(&[("crates/sim/src/a.rs", "pub fn clean() {}\n")]);
    let ratchet = after.ratchet(&recorded);
    assert!(ratchet.new.is_empty());
    assert_eq!(ratchet.stale.len(), 1, "the grant must be revoked");
    // Regenerating (what `check --update-baseline` writes) makes it clean.
    let regenerated = after.to_baseline();
    assert!(after.ratchet(&regenerated).is_clean());
    assert!(regenerated.total() < recorded.total(), "the ratchet moved");
}

#[test]
fn debt_moving_between_files_is_both_new_and_stale() {
    let recorded = report_of(&[("crates/sim/src/a.rs", DIRTY)]).to_baseline();
    let moved = report_of(&[("crates/sim/src/b.rs", DIRTY)]);
    let ratchet = moved.ratchet(&recorded);
    assert_eq!(ratchet.new.len(), 1);
    assert_eq!(ratchet.stale.len(), 1);
}

#[test]
fn baseline_file_round_trips_through_render_and_parse() {
    let report = report_of(&[
        ("crates/sim/src/a.rs", DIRTY),
        (
            "crates/sim/src/b.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        ),
    ]);
    let baseline = report.to_baseline();
    let parsed = Baseline::parse(&baseline.render()).expect("canonical render parses");
    assert_eq!(parsed, baseline);
    assert!(report.ratchet(&parsed).is_clean());
}
