//! Fixture suites for the four cross-file rule families, run through the
//! in-memory workspace so each case states its whole world: sources,
//! registry, documentation. Every family gets a positive case (the rule
//! fires), a negative case (a near miss stays clean) and an escape case
//! (a justified `// analysis: allow(...)` suppresses the finding).

use pipedepth_analysis::{analyze_sources, FileRole, MemSource, MemWorkspace, Violation};

fn lib(crate_name: &str, rel_path: &str, text: &str) -> MemSource {
    MemSource {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        role: FileRole::Lib,
        text: text.to_string(),
    }
}

fn bin(crate_name: &str, rel_path: &str, text: &str) -> MemSource {
    MemSource {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        role: FileRole::Bin,
        text: text.to_string(),
    }
}

fn scan(ws: &MemWorkspace) -> Vec<Violation> {
    analyze_sources(ws)
        .expect("in-memory scan succeeds")
        .violations
        .into_iter()
        .collect()
}

fn of<'a>(violations: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    violations.iter().filter(|v| v.rule == rule).collect()
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

const ABBA: &str = "\
pub fn forward(s: &S) {
    let a = s.slots.lock();
    let b = s.queue.lock();
    drop(b);
    drop(a);
}
pub fn backward(s: &S) {
    let b = s.queue.lock();
    let a = s.slots.lock();
    drop(a);
    drop(b);
}
";

#[test]
fn lock_order_flags_abba_pairs_across_functions() {
    let ws = MemWorkspace {
        sources: vec![lib("pipedepth-serve", "crates/serve/src/batch.rs", ABBA)],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "lock-order");
    assert_eq!(hits.len(), 2, "one finding per conflicting site: {vs:?}");
    assert!(
        hits[0].message.contains("opposite order"),
        "{}",
        hits[0].message
    );
}

#[test]
fn lock_order_is_quiet_for_consistent_nesting() {
    let consistent = "\
pub fn one(s: &S) { let a = s.slots.lock(); let b = s.queue.lock(); drop(b); drop(a); }
pub fn two(s: &S) { let a = s.slots.lock(); let b = s.queue.lock(); drop(b); drop(a); }
";
    let ws = MemWorkspace {
        sources: vec![lib(
            "pipedepth-serve",
            "crates/serve/src/batch.rs",
            consistent,
        )],
        ..MemWorkspace::default()
    };
    assert!(of(&scan(&ws), "lock-order").is_empty());
}

#[test]
fn lock_order_flags_join_under_a_live_guard() {
    let src = "\
pub fn drain(s: &S, h: std::thread::JoinHandle<()>) {
    let g = s.slots.lock();
    h.join();
    drop(g);
}
";
    let ws = MemWorkspace {
        sources: vec![lib("pipedepth-serve", "crates/serve/src/batch.rs", src)],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "lock-order");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert!(hits[0].message.contains("join"), "{}", hits[0].message);
}

#[test]
fn lock_order_escape_comment_suppresses_the_finding() {
    let src = "\
pub fn drain(s: &S, h: std::thread::JoinHandle<()>) {
    let g = s.slots.lock();
    // analysis: allow(lock-order) — worker thread never takes this lock
    h.join();
    drop(g);
}
";
    let ws = MemWorkspace {
        sources: vec![lib("pipedepth-serve", "crates/serve/src/batch.rs", src)],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    assert!(of(&vs, "lock-order").is_empty(), "{vs:?}");
    assert!(
        of(&vs, "escape-comment").is_empty(),
        "escape must count as used: {vs:?}"
    );
}

// ---------------------------------------------------------------------------
// telemetry-contract
// ---------------------------------------------------------------------------

const EMITTER: &str = "pub fn go(t: &T) { t.counter(\"serve.requests\", 1); }\n";
const REGISTERED: &str = "\
version = 1
[[metric]]
name = \"serve.requests\"
kind = \"counter\"
owner = \"pipedepth-serve\"
";

#[test]
fn telemetry_contract_accepts_a_registered_metric() {
    let ws = MemWorkspace {
        sources: vec![lib(
            "pipedepth-serve",
            "crates/serve/src/service.rs",
            EMITTER,
        )],
        registry_toml: REGISTERED.to_string(),
        ..MemWorkspace::default()
    };
    assert!(of(&scan(&ws), "telemetry-contract").is_empty());
}

#[test]
fn telemetry_contract_flags_an_unregistered_metric() {
    let ws = MemWorkspace {
        sources: vec![lib(
            "pipedepth-serve",
            "crates/serve/src/service.rs",
            EMITTER,
        )],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "telemetry-contract");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert!(hits[0].message.contains("serve.requests"));
    assert_eq!(hits[0].file, "crates/serve/src/service.rs");
}

#[test]
fn telemetry_contract_flags_a_dead_registry_entry() {
    let ws = MemWorkspace {
        sources: vec![lib(
            "pipedepth-serve",
            "crates/serve/src/service.rs",
            "pub fn go() {}\n",
        )],
        registry_toml: REGISTERED.to_string(),
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "telemetry-contract");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert!(
        hits[0].message.contains("dead entry"),
        "{}",
        hits[0].message
    );
    assert_eq!(hits[0].file, "telemetry.registry.toml");
}

#[test]
fn telemetry_contract_flags_a_kind_conflict_with_the_registry() {
    let gauge_emitter = "pub fn go(t: &T) { t.gauge(\"serve.requests\", 1.0); }\n";
    let ws = MemWorkspace {
        sources: vec![lib(
            "pipedepth-serve",
            "crates/serve/src/service.rs",
            gauge_emitter,
        )],
        registry_toml: REGISTERED.to_string(),
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "telemetry-contract");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert!(hits[0].message.contains("counter"), "{}", hits[0].message);
    assert!(hits[0].message.contains("gauge"), "{}", hits[0].message);
}

#[test]
fn telemetry_contract_flags_conflicting_kinds_between_call_sites() {
    let two_kinds = "\
pub fn a(t: &T) { t.counter(\"serve.mixed\", 1); }
pub fn b(t: &T) { t.histogram(\"serve.mixed\", 2.0); }
";
    let registry = "\
version = 1
[[metric]]
name = \"serve.mixed\"
kind = \"counter\"
owner = \"pipedepth-serve\"
";
    let ws = MemWorkspace {
        sources: vec![lib(
            "pipedepth-serve",
            "crates/serve/src/service.rs",
            two_kinds,
        )],
        registry_toml: registry.to_string(),
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    assert!(
        !of(&vs, "telemetry-contract").is_empty(),
        "same name used as counter and histogram must fail: {vs:?}"
    );
}

// ---------------------------------------------------------------------------
// flag-doc-drift
// ---------------------------------------------------------------------------

const FLAG_BIN: &str = "\
pub fn parse(args: &[String]) -> bool {
    args.iter().any(|a| a == \"--fast-mode\")
}
fn main() {}
";

#[test]
fn flag_doc_drift_accepts_a_documented_flag() {
    let ws = MemWorkspace {
        sources: vec![bin(
            "pipedepth-experiments",
            "crates/experiments/src/bin/x.rs",
            FLAG_BIN,
        )],
        experiments_md: "Use `--fast-mode` to skip warmup.\n".to_string(),
        ..MemWorkspace::default()
    };
    assert!(of(&scan(&ws), "flag-doc-drift").is_empty());
}

#[test]
fn flag_doc_drift_flags_an_undocumented_flag_at_its_definition() {
    let ws = MemWorkspace {
        sources: vec![bin(
            "pipedepth-experiments",
            "crates/experiments/src/bin/x.rs",
            FLAG_BIN,
        )],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "flag-doc-drift");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert_eq!(hits[0].file, "crates/experiments/src/bin/x.rs");
    assert!(hits[0].message.contains("--fast-mode"));
}

#[test]
fn flag_doc_drift_flags_a_documented_ghost_flag_at_its_doc_line() {
    let ws = MemWorkspace {
        sources: vec![bin(
            "pipedepth-experiments",
            "crates/experiments/src/bin/x.rs",
            FLAG_BIN,
        )],
        experiments_md: "Use `--fast-mode`.\n\nAlso try `--turbo`.\n".to_string(),
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "flag-doc-drift");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert_eq!(hits[0].file, "EXPERIMENTS.md");
    assert_eq!(hits[0].line, 3);
    assert!(hits[0].message.contains("--turbo"));
}

#[test]
fn flag_doc_drift_ignores_cargo_flags_before_the_separator() {
    let doc = "Run `cargo run --release -p pipedepth-experiments -- --fast-mode`.\n";
    let ws = MemWorkspace {
        sources: vec![bin(
            "pipedepth-experiments",
            "crates/experiments/src/bin/x.rs",
            FLAG_BIN,
        )],
        experiments_md: doc.to_string(),
        ..MemWorkspace::default()
    };
    assert!(
        of(&scan(&ws), "flag-doc-drift").is_empty(),
        "--release belongs to cargo, --fast-mode is documented"
    );
}

#[test]
fn flag_doc_drift_flags_in_library_files_do_not_count_as_definitions() {
    let ws = MemWorkspace {
        sources: vec![lib(
            "pipedepth-experiments",
            "crates/experiments/src/lib.rs",
            FLAG_BIN,
        )],
        ..MemWorkspace::default()
    };
    assert!(
        of(&scan(&ws), "flag-doc-drift").is_empty(),
        "only binary roots define CLI flags"
    );
}

// ---------------------------------------------------------------------------
// determinism-taint
// ---------------------------------------------------------------------------

const TAINTED_EXPORTER: &str = "\
/// Re-exported clock — fine inside the exempt telemetry crate.
pub use std::time::Instant as Clock;
";

#[test]
fn determinism_taint_flags_importing_a_tainted_reexport() {
    let consumer = "use pipedepth_telemetry::Clock;\npub fn f() {}\n";
    let ws = MemWorkspace {
        sources: vec![
            lib(
                "pipedepth-telemetry",
                "crates/telemetry/src/lib.rs",
                TAINTED_EXPORTER,
            ),
            lib("pipedepth-sim", "crates/sim/src/engine.rs", consumer),
        ],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let hits = of(&vs, "determinism-taint");
    assert_eq!(hits.len(), 1, "{vs:?}");
    assert_eq!(hits[0].file, "crates/sim/src/engine.rs");
    assert!(hits[0].message.contains("Instant"), "{}", hits[0].message);
}

#[test]
fn determinism_taint_allows_untainted_imports_and_exempt_consumers() {
    let clean_export = "/// A plain helper.\npub fn now_label() -> &'static str { \"t\" }\n";
    let consumer = "use pipedepth_telemetry::now_label;\npub fn f() {}\n";
    let exempt_consumer = "use pipedepth_telemetry::Clock;\npub fn g() {}\n";
    let ws = MemWorkspace {
        sources: vec![
            lib(
                "pipedepth-telemetry",
                "crates/telemetry/src/lib.rs",
                TAINTED_EXPORTER,
            ),
            lib(
                "pipedepth-telemetry",
                "crates/telemetry/src/capture.rs",
                clean_export,
            ),
            lib("pipedepth-sim", "crates/sim/src/engine.rs", consumer),
            // The telemetry crate itself is time-exempt; its own modules
            // may pass the tainted alias around freely.
            lib(
                "pipedepth-telemetry",
                "crates/telemetry/src/snapshot.rs",
                exempt_consumer,
            ),
        ],
        ..MemWorkspace::default()
    };
    assert!(of(&scan(&ws), "determinism-taint").is_empty());
}

#[test]
fn determinism_taint_escape_comment_suppresses_the_finding() {
    let consumer = "\
// analysis: allow(determinism-taint) — wall-clock used for progress display only
use pipedepth_telemetry::Clock;
pub fn f() {}
";
    let ws = MemWorkspace {
        sources: vec![
            lib(
                "pipedepth-telemetry",
                "crates/telemetry/src/lib.rs",
                TAINTED_EXPORTER,
            ),
            lib("pipedepth-sim", "crates/sim/src/engine.rs", consumer),
        ],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    assert!(of(&vs, "determinism-taint").is_empty(), "{vs:?}");
    assert!(of(&vs, "escape-comment").is_empty(), "{vs:?}");
}

// ---------------------------------------------------------------------------
// ordering and fingerprints hold for cross-file findings too
// ---------------------------------------------------------------------------

#[test]
fn cross_file_findings_sort_with_per_file_findings_and_carry_fingerprints() {
    let dirty = "\
use std::collections::HashMap;
fn go(t: &T) { t.counter(\"serve.requests\", 1); }
";
    let ws = MemWorkspace {
        sources: vec![lib("pipedepth-serve", "crates/serve/src/service.rs", dirty)],
        ..MemWorkspace::default()
    };
    let vs = scan(&ws);
    let rules: Vec<&str> = vs.iter().map(|v| v.rule).collect();
    assert_eq!(rules, ["hash-collections", "telemetry-contract"], "{vs:?}");
    assert!(vs.iter().all(|v| v.fingerprint != 0), "{vs:?}");
    let lines: Vec<u32> = vs.iter().map(|v| v.line).collect();
    assert_eq!(lines, [1, 2]);
}
