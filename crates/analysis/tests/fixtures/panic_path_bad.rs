//! Fixture: the five panic constructs in library code, plus exemptions.

pub fn takes_shortcuts(input: Option<u32>, text: &str) -> u32 {
    let a = input.unwrap();
    let b: u32 = text.parse().expect("caller passes digits");
    if a + b == 77 {
        panic!("unlucky");
    }
    if a == 0 {
        todo!("zero handling");
    }
    a + b
}

pub fn not_fooled_by_strings() -> &'static str {
    // The lexer must not see idents inside literals or comments:
    // .unwrap() panic! todo!
    "call .unwrap() or panic! here is fine"
}

pub fn justified(xs: &[u32]) -> u32 {
    // analysis: allow(panic-path) — slice is non-empty by construction
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
