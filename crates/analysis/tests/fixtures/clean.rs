//! Fixture: library code that satisfies every rule.
use std::collections::BTreeMap;

/// Ordered tallies.
pub fn tallies(keys: &[&str]) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    for k in keys {
        *out.entry(k.to_string()).or_insert(0) += 1;
    }
    out
}

/// Fallible lookup instead of a panicking index.
pub fn first(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}
