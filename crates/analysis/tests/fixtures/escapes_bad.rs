//! Fixture: malformed, unknown-rule and unused escape comments.

// analysis: allow(made-up-rule) — not a rule the engine knows
pub fn unknown_rule() {}

// analysis: allow(panic-path)
pub fn missing_reason() {}

// analysis: allow(panic-path) — nothing here panics, so this is stale
pub fn unused_escape() {}

pub fn trailing_covers_own_line_only(v: Option<u32>) -> u32 {
    // The escape sits on the line before the unwrap but is a *trailing*
    // comment there, so it must not cover the next line.
    let _ = v; // analysis: allow(panic-path) — wrong line entirely
    v.unwrap()
}
