//! Fixture: hash collections in library code, one justified escape.
use std::collections::HashMap;

pub fn tallies() -> HashMap<String, u64> {
    HashMap::new()
}

// analysis: allow(hash-collections) — iteration order never observed
pub type Scratch = std::collections::HashSet<u64>;

#[cfg(test)]
mod tests {
    // Exempt: test code may hash freely.
    use std::collections::HashMap;

    #[test]
    fn uses_hash() {
        let _ = HashMap::<u32, u32>::new();
    }
}
