//! Fixture: wall-clock reads in library code.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch_seconds() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
