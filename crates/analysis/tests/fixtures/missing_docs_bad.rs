//! Fixture: public items with and without doc comments.

/// Documented: no violation.
pub struct Documented {
    /// Documented field.
    pub field: u32,
    pub bare_field: u32,
}

pub struct Bare;

/// Documented function.
pub fn documented() {}

pub fn bare() {}

pub use std::collections::BTreeMap;

pub(crate) fn crate_visible_needs_no_docs() {}

fn private_needs_no_docs() {}

pub mod bare_module {}
