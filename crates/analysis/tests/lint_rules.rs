//! Fixture-driven tests of the rule engine: each fixture under
//! `tests/fixtures/` is linted as a library file of a hypothetical crate
//! and the surviving violations are checked rule by rule.

use pipedepth_analysis::{lint_source, FileRole, Violation};

fn lint(crate_name: &str, fixture: &str, source: &str) -> Vec<Violation> {
    lint_source(
        crate_name,
        &format!("crates/fixture/src/{fixture}"),
        FileRole::Lib,
        source,
    )
}

fn rules_of(violations: &[Violation]) -> Vec<&str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn hash_collections_fixture() {
    let src = include_str!("fixtures/hash_collections_bad.rs");
    let v = lint("pipedepth-trace", "hash.rs", src);
    assert_eq!(
        rules_of(&v),
        ["hash-collections"; 3],
        "use + return type + constructor flagged; escaped alias and test \
         module exempt: {v:#?}"
    );
    assert_eq!(v[0].line, 2, "the `use` line");
}

#[test]
fn panic_path_fixture() {
    // Linted as a crate outside the documented set so only panic-path fires.
    let src = include_str!("fixtures/panic_path_bad.rs");
    let v = lint("pipedepth-trace", "panic.rs", src);
    assert_eq!(
        rules_of(&v),
        ["panic-path"; 4],
        "unwrap, expect, panic!, todo! flagged; string literals, the \
         justified escape and the test module exempt: {v:#?}"
    );
}

#[test]
fn panic_rules_exempt_non_library_roles() {
    let src = include_str!("fixtures/panic_path_bad.rs");
    for role in [FileRole::Test, FileRole::Bench, FileRole::Example] {
        let v = lint_source("pipedepth-core", "crates/x/tests/t.rs", role, src);
        assert!(v.is_empty(), "{role:?} must be exempt: {v:#?}");
    }
    let as_bin = lint_source("pipedepth-core", "crates/x/src/main.rs", FileRole::Bin, src);
    // Binaries are exempt from panic-path itself; the now-pointless escape
    // comment is still flagged as unused.
    assert!(
        as_bin.iter().all(|v| v.rule == "escape-comment"),
        "panic-path does not apply to binaries: {as_bin:#?}"
    );
}

#[test]
fn time_fixture() {
    let src = include_str!("fixtures/time_bad.rs");
    let v = lint("pipedepth-trace", "time.rs", src);
    assert_eq!(
        rules_of(&v),
        ["nondeterministic-time"; 4],
        "three `Instant` mentions and one `SystemTime`: {v:#?}"
    );
}

#[test]
fn time_rule_exempts_telemetry_and_the_repro_driver() {
    let src = include_str!("fixtures/time_bad.rs");
    let telemetry = lint("pipedepth-telemetry", "time.rs", src);
    assert!(
        telemetry.is_empty(),
        "telemetry owns the clock: {telemetry:#?}"
    );
    let repro = lint_source(
        "pipedepth-experiments",
        "crates/experiments/src/bin/repro.rs",
        FileRole::Bin,
        src,
    );
    assert!(
        repro.is_empty(),
        "the repro driver may time phases: {repro:#?}"
    );
}

#[test]
fn missing_docs_fixture() {
    let src = include_str!("fixtures/missing_docs_bad.rs");
    let v = lint("pipedepth-core", "docs.rs", src);
    assert_eq!(
        rules_of(&v),
        ["missing-docs"; 5],
        "bare field, unit struct, bare fn, pub use, bare mod: {v:#?}"
    );
    // The same file in a crate outside the documented set is clean.
    assert!(lint("pipedepth-trace", "docs.rs", src).is_empty());
}

#[test]
fn escape_fixture() {
    let src = include_str!("fixtures/escapes_bad.rs");
    let v = lint("pipedepth-core", "escapes.rs", src);
    let escapes = v.iter().filter(|v| v.rule == "escape-comment").count();
    let panics = v.iter().filter(|v| v.rule == "panic-path").count();
    assert_eq!(
        (escapes, panics),
        (4, 1),
        "unknown rule, missing reason, two unused escapes; the trailing \
         escape does not cover the following line's unwrap: {v:#?}"
    );
}

#[test]
fn clean_fixture_is_clean() {
    let src = include_str!("fixtures/clean.rs");
    assert!(lint("pipedepth-core", "clean.rs", src).is_empty());
}

#[test]
fn injected_hash_map_into_sim_fails() {
    // The acceptance probe from the issue: a HashMap dropped into a sim
    // library file must produce a violation.
    let v = lint_source(
        "pipedepth-sim",
        "crates/sim/src/engine.rs",
        FileRole::Lib,
        "use std::collections::HashMap;\n/// Documented.\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n",
    );
    assert!(v.iter().all(|v| v.rule == "hash-collections"));
    assert_eq!(v.len(), 3);
}

#[test]
fn injected_unwrap_into_core_fails() {
    let v = lint_source(
        "pipedepth-core",
        "crates/core/src/optimum.rs",
        FileRole::Lib,
        "/// Documented.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(rules_of(&v), ["panic-path"]);
}
