//! `cargo test` itself enforces the lint gate: scanning the real
//! workspace must come out clean against the committed baseline. This is
//! the same check CI runs via `cargo run -p pipedepth-analysis -- check`.
//! On top of the gate, the real scan pins the engine's output contracts:
//! the JSON report parses (through `pipedepth-serve`'s own parser), the
//! semantic model sees the workspace's actual locks/metrics/flags, and
//! output is byte-identical across thread counts.

use pipedepth_analysis::engine::{analyze_workspace_with, ScanOptions};
use pipedepth_analysis::{analyze_workspace, render_json, Baseline, Registry};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the root")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_against_the_committed_baseline() {
    let root = workspace_root();
    let baseline_path = root.join("analysis.baseline.toml");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    let recorded = Baseline::parse(&text).expect("committed baseline parses");

    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "walked the whole workspace");

    let ratchet = report.ratchet(&recorded);
    let mut lines = Vec::new();
    for delta in &ratchet.new {
        lines.push(format!("NEW   {delta}"));
        for v in report.of(&delta.file, &delta.rule) {
            lines.push(format!("      {}:{} {}", v.file, v.line, v.message));
        }
    }
    for delta in &ratchet.stale {
        lines.push(format!("STALE {delta}"));
    }
    assert!(
        ratchet.is_clean(),
        "lint gate failed; fix the new violations or regenerate the \
         baseline with `cargo run -p pipedepth-analysis -- check \
         --update-baseline`:\n{}",
        lines.join("\n")
    );
}

#[test]
fn committed_registry_matches_the_live_metric_inventory() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("telemetry.registry.toml"))
        .expect("telemetry.registry.toml is committed");
    let committed = Registry::parse(&text).expect("committed registry parses");
    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    let drafted = Registry::suggested(&report.model);
    // Canonical renders compare the contract; entry line hints differ by
    // construction (parsed entries carry file positions, drafts do not).
    assert_eq!(
        committed.render(),
        drafted.render(),
        "telemetry.registry.toml has drifted from the code; regenerate \
         with `cargo run -p pipedepth-analysis -- metrics`"
    );
    assert!(!drafted.entries.is_empty(), "the workspace emits metrics");
}

#[test]
fn model_sees_the_workspaces_real_locks_metrics_and_flags() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    let model = &report.model;

    let batch = model
        .file("crates/serve/src/batch.rs")
        .expect("serve batch module is scanned");
    assert!(!batch.items.is_empty(), "batch module outline is populated");
    // The serve batch queue takes one lock at a time and its condvar
    // waits consume their guard, so the lock-order fact table is empty
    // by design — the workspace's concurrency hygiene, pinned.
    assert!(
        model.files.iter().all(|f| f.lock_facts.is_empty()),
        "a nested-lock or blocking-under-guard site appeared; if it is \
         deliberate, escape it and update this pin"
    );
    let metric_count: usize = model.files.iter().map(|f| f.metrics.len()).sum();
    assert!(metric_count > 20, "only {metric_count} metric uses seen");
    let repro = model
        .file("crates/experiments/src/bin/repro.rs")
        .expect("repro driver is scanned");
    assert!(
        repro.flags.iter().any(|f| f.flag == "--only"),
        "repro's flags must be extracted: {:?}",
        repro.flags
    );
}

#[test]
fn json_report_parses_and_round_trips_key_fields() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    let recorded = Baseline::parse(
        &std::fs::read_to_string(root.join("analysis.baseline.toml")).expect("baseline exists"),
    )
    .expect("baseline parses");
    let ratchet = report.ratchet(&recorded);

    let json = render_json(&report, &recorded, &ratchet);
    let doc = pipedepth_serve::json::parse(&json).expect("report is valid JSON");
    assert_eq!(doc.get("schema_version").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        doc.get("files_scanned").and_then(|v| v.as_u64()),
        Some(report.files_scanned as u64)
    );
    let violations = doc
        .get("violations")
        .and_then(|v| v.as_array())
        .expect("violations array");
    assert_eq!(violations.len(), report.violations.len());
    for (parsed, v) in violations.iter().zip(&report.violations) {
        assert_eq!(parsed.get("rule").and_then(|x| x.as_str()), Some(v.rule));
        assert_eq!(
            parsed.get("file").and_then(|x| x.as_str()),
            Some(v.file.as_str())
        );
        assert_eq!(
            parsed.get("line").and_then(|x| x.as_u64()),
            Some(u64::from(v.line))
        );
        assert_eq!(
            parsed.get("fingerprint").and_then(|x| x.as_str()),
            Some(format!("{:016x}", v.fingerprint).as_str())
        );
        assert_eq!(
            parsed.get("baselined").and_then(|x| x.as_bool()),
            Some(true),
            "a clean tree's violations are all baselined"
        );
    }
    assert_eq!(
        doc.get("ratchet")
            .and_then(|r| r.get("clean"))
            .and_then(|v| v.as_bool()),
        Some(true)
    );
    let rules = doc.get("rules").and_then(|v| v.as_array()).expect("rules");
    assert_eq!(rules.len(), 9, "all nine rules are advertised");
}

#[test]
fn scan_output_is_byte_identical_across_thread_counts() {
    let root = workspace_root();
    let recorded = Baseline::default();
    let renders: Vec<String> = [1usize, 4, 13]
        .iter()
        .map(|&threads| {
            let report = analyze_workspace_with(&root, ScanOptions { threads })
                .expect("workspace scan succeeds");
            let ratchet = report.ratchet(&recorded);
            render_json(&report, &recorded, &ratchet)
        })
        .collect();
    assert_eq!(renders[0], renders[1], "1 vs 4 threads diverged");
    assert_eq!(renders[0], renders[2], "1 vs 13 threads diverged");
}
