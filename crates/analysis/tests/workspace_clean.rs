//! `cargo test` itself enforces the lint gate: scanning the real
//! workspace must come out clean against the committed baseline. This is
//! the same check CI runs via `cargo run -p pipedepth-analysis -- check`.

use pipedepth_analysis::{analyze_workspace, Baseline};
use std::path::Path;

#[test]
fn workspace_is_clean_against_the_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the root")
        .to_path_buf();
    let baseline_path = root.join("analysis.baseline.toml");
    let text = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| panic!("{}: {e}", baseline_path.display()));
    let recorded = Baseline::parse(&text).expect("committed baseline parses");

    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "walked the whole workspace");

    let ratchet = report.ratchet(&recorded);
    let mut lines = Vec::new();
    for delta in &ratchet.new {
        lines.push(format!("NEW   {delta}"));
        for v in report.of(&delta.file, &delta.rule) {
            lines.push(format!("      {}:{} {}", v.file, v.line, v.message));
        }
    }
    for delta in &ratchet.stale {
        lines.push(format!("STALE {delta}"));
    }
    assert!(
        ratchet.is_clean(),
        "lint gate failed; fix the new violations or regenerate the \
         baseline with `cargo run -p pipedepth-analysis -- check \
         --update-baseline`:\n{}",
        lines.join("\n")
    );
}
